"""Parity and pooling tests for the QMC kernel backends.

The contract of the hot-path rewrite: the fused ``"numpy"`` backend is
**bit-identical** to the ``"reference"`` (pre-optimization) row loop across
dense and TLR sweeps, one-/two-sided and mixed limits; pooled workspaces
carry no state between calls or between boxes of a batch; and the backend
registry resolves names, the environment variable and the numba fallback as
documented.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import mvn_probability_batch
from repro.core import factorize, pmvn_dense, pmvn_tlr, qmc_kernel_tile
from repro.core.kernel_backend import (
    BACKEND_ENV_VAR,
    KernelWorkspace,
    _numba_kernel_py,
    _numpy_kernel,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.solver import MVNSolver, SolverConfig
from repro.stats.normal import norm_cdf, norm_cdf_interval, norm_ppf
from repro.stats.qmc import qmc_samples
from repro.utils.timers import TimingRegistry

numba_missing = "numba" not in available_backends()


@pytest.fixture
def spd36(rng):
    from repro.kernels import ExponentialKernel, Geometry, build_covariance

    geom = Geometry.regular_grid(6, 6)
    return build_covariance(ExponentialKernel(1.0, 0.25), geom.locations, nugget=1e-8)


class TestBitParity:
    @pytest.mark.parametrize("kind", ["one-sided", "two-sided", "mixed"])
    @pytest.mark.parametrize("method", ["dense", "tlr"])
    def test_numpy_backend_bit_identical(self, spd36, rng, method, kind):
        n = spd36.shape[0]
        a, b = {
            "one-sided": (np.full(n, -np.inf), rng.uniform(0.5, 2.0, n)),
            "two-sided": (-rng.uniform(1.0, 3.0, n), rng.uniform(0.5, 2.0, n)),
            "mixed": (
                np.where(np.arange(n) % 3 == 0, -np.inf, -1.5),
                np.where(np.arange(n) % 5 == 0, np.inf, 1.2),
            ),
        }[kind]
        fn = pmvn_dense if method == "dense" else pmvn_tlr
        kwargs = {} if method == "dense" else {"accuracy": 1e-5}
        ref = fn(a, b, spd36, n_samples=600, tile_size=7, rng=3, backend="reference", **kwargs)
        fused = fn(a, b, spd36, n_samples=600, tile_size=7, rng=3, backend="numpy", **kwargs)
        assert fused.probability == ref.probability
        assert fused.error == ref.error
        assert fused.details["backend"] == "numpy"
        assert ref.details["backend"] == "reference"

    def test_heterogeneous_columns_bit_identical(self, small_spd):
        """Rows mixing -inf and finite limits *across chains* stay exact.

        The one-sided fast paths may only fire when every chain of a row is
        infinite; a column-0-only classification would silently treat the
        whole row as unbounded."""
        n = small_spd.shape[0]
        c = 32
        l_tile = np.linalg.cholesky(small_spd)
        r_tile = qmc_samples(n, c, rng=11)
        a_tile = np.full((n, c), -1.2)
        a_tile[1, 0] = -np.inf          # chain 0 unbounded, chains 1.. finite
        b_tile = np.full((n, c), 1.3)
        b_tile[2, -1] = np.inf
        out = {}
        for backend in ("reference", "numpy"):
            p_seg = np.ones(c)
            y_tile = np.zeros((n, c))
            qmc_kernel_tile(l_tile, r_tile, a_tile.copy(), b_tile.copy(),
                            p_seg, y_tile, backend=backend)
            out[backend] = (p_seg, y_tile)
        np.testing.assert_array_equal(out["numpy"][0], out["reference"][0])
        np.testing.assert_array_equal(out["numpy"][1], out["reference"][1])

    def test_prefix_sumsq_alone_accumulates(self, small_spd):
        """prefix_sumsq must fill even when prefix_sum is not requested."""
        n = small_spd.shape[0]
        c = 16
        l_tile = np.linalg.cholesky(small_spd)
        r_tile = qmc_samples(n, c, rng=1)
        for backend in ("reference", "numpy"):
            sumsq = np.zeros(n)
            qmc_kernel_tile(l_tile, r_tile, np.full((n, c), -2.0), np.full((n, c), 2.0),
                            np.ones(c), np.zeros((n, c)),
                            prefix_sumsq=sumsq, backend=backend)
            assert np.all(sumsq > 0.0), backend

    def test_prefix_accumulators_bit_identical(self, spd36):
        from repro.core import PMVNOptions, pmvn_integrate

        n = spd36.shape[0]
        factor = factorize(spd36, method="dense", tile_size=7)
        out = {}
        for backend in ("reference", "numpy"):
            options = PMVNOptions(n_samples=400, rng=1, return_prefix=True, backend=backend)
            out[backend] = pmvn_integrate(np.full(n, -0.8), np.full(n, np.inf), factor, options)
        np.testing.assert_array_equal(
            out["numpy"].details["prefix_probabilities"],
            out["reference"].details["prefix_probabilities"],
        )
        np.testing.assert_array_equal(
            out["numpy"].details["prefix_errors"],
            out["reference"].details["prefix_errors"],
        )

    def test_numba_python_recursion_matches_numpy(self, small_spd):
        """The (pure-Python) numba kernel body agrees to ~1e-12.

        Runs the exact function numba compiles, so the logic is covered even
        on installs without numba.
        """
        n = small_spd.shape[0]
        c = 128
        l_tile = np.linalg.cholesky(small_spd)
        r_tile = qmc_samples(n, c, rng=5)
        a_tile = np.full((n, c), -np.inf)
        a_tile[::2] = -1.4
        b_tile = np.full((n, c), 1.1)
        b_tile[1::4] = np.inf
        ws = KernelWorkspace()
        ws.ensure(n, c)
        ws.bind_tile(l_tile)
        p_np, p_nb = np.ones(c), np.ones(c)
        y_np, y_nb = np.zeros((n, c)), np.zeros((n, c))
        _numpy_kernel(l_tile, r_tile, a_tile.copy(), b_tile.copy(), p_np, y_np, None, None, ws)
        _numba_kernel_py(l_tile, r_tile, a_tile.copy(), b_tile.copy(), p_nb, y_nb,
                         ws.inv_diag[:n], np.zeros(n), np.zeros(n), False)
        np.testing.assert_allclose(p_nb, p_np, rtol=1e-10, atol=1e-300)
        np.testing.assert_allclose(y_nb, y_np, rtol=0, atol=1e-9)

    @pytest.mark.skipif(numba_missing, reason="numba not installed")
    def test_numba_backend_close_to_numpy(self, spd36, rng):
        n = spd36.shape[0]
        a, b = np.full(n, -np.inf), rng.uniform(0.5, 2.0, n)
        fused = pmvn_dense(a, b, spd36, n_samples=600, tile_size=7, rng=3, backend="numpy")
        jit = pmvn_dense(a, b, spd36, n_samples=600, tile_size=7, rng=3, backend="numba")
        assert jit.details["backend"] == "numba"
        assert jit.probability == pytest.approx(fused.probability, rel=1e-9, abs=1e-300)


class TestWorkspacePooling:
    def test_batch_boxes_leak_no_state(self, spd36, rng):
        """Permutation invariance: pooled buffers carry nothing across boxes."""
        n = spd36.shape[0]
        boxes = [
            (np.full(n, -np.inf), rng.uniform(0.3, 2.0, n)),
            (-rng.uniform(1.0, 2.0, n), rng.uniform(0.3, 2.0, n)),
            (np.full(n, -np.inf), rng.uniform(0.3, 2.0, n)),
        ]
        order = [2, 0, 1]
        straight = mvn_probability_batch(boxes, spd36, method="dense", n_samples=500, rng=9, tile_size=7)
        permuted = mvn_probability_batch([boxes[i] for i in order], spd36,
                                         method="dense", n_samples=500, rng=9, tile_size=7)
        for pos, original in enumerate(order):
            assert permuted[pos].probability == straight[original].probability
            assert permuted[pos].error == straight[original].error

    def test_model_workspace_reused_across_calls(self, spd36, rng):
        """Consecutive queries through one Model (shared pooled workspace)
        reproduce fresh-solver results bit for bit."""
        n = spd36.shape[0]
        a1, b1 = np.full(n, -np.inf), rng.uniform(0.5, 2.0, n)
        a2, b2 = -rng.uniform(1.0, 2.0, n), rng.uniform(0.5, 2.0, n)
        with MVNSolver(SolverConfig(method="dense", n_samples=500, tile_size=7)) as solver:
            model = solver.model(spd36)
            warm1 = model.probability(a1, b1, rng=4)
            warm2 = model.probability(a2, b2, rng=4)
            warm1_again = model.probability(a1, b1, rng=4)
        fresh1 = pmvn_dense(a1, b1, spd36, n_samples=500, tile_size=7, rng=4)
        fresh2 = pmvn_dense(a2, b2, spd36, n_samples=500, tile_size=7, rng=4)
        assert warm1.probability == fresh1.probability
        assert warm2.probability == fresh2.probability
        assert warm1_again.probability == fresh1.probability

    def test_wave_buffer_checkout_is_exclusive(self, spd36, rng):
        """Concurrent sweeps cannot share the keyed wave buffers: a second
        claimant is refused and the sweep falls back to a transient pool,
        producing identical results."""
        from repro.core.pmvn import SweepWorkspace

        ws = SweepWorkspace()
        assert ws.checkout_wave_buffers()
        assert not ws.checkout_wave_buffers()

        # a sweep handed a busy workspace must still be bit-correct
        n = spd36.shape[0]
        a, b = np.full(n, -np.inf), rng.uniform(0.5, 2.0, n)
        busy = pmvn_dense(a, b, spd36, n_samples=400, tile_size=7, rng=8, workspace=ws)
        fresh = pmvn_dense(a, b, spd36, n_samples=400, tile_size=7, rng=8)
        assert busy.probability == fresh.probability

        ws.release_wave_buffers()
        assert ws.checkout_wave_buffers()
        ws.release_wave_buffers()

    def test_confidence_region_uses_config_backend(self, spd36, monkeypatch):
        """SolverConfig.backend reaches the CRD sweeps (not just probability)."""
        import repro.core.pmvn as pmvn_mod

        seen: list = []
        original = pmvn_mod.get_backend

        def spy(name=None):
            seen.append(name)
            return original(name)

        monkeypatch.setattr(pmvn_mod, "get_backend", spy)
        with MVNSolver(SolverConfig(method="dense", n_samples=200, tile_size=12,
                                    backend="reference")) as solver:
            solver.model(spd36, mean=0.3).confidence_region(0.1, rng=0)
        assert "reference" in seen

    def test_bad_diagonal_rejected_before_mutation(self):
        """The vectorized pre-check fires before any chain state is touched."""
        bad = np.eye(4)
        bad[2, 2] = -1.0
        c = 8
        p_seg = np.ones(c)
        y_tile = np.zeros((4, c))
        a_tile = np.full((4, c), -1.0)
        b_tile = np.full((4, c), 1.0)
        with pytest.raises(np.linalg.LinAlgError):
            qmc_kernel_tile(bad, np.full((4, c), 0.5), a_tile, b_tile, p_seg, y_tile)
        # the reference kernel used to multiply p_seg for rows 0..1 before
        # noticing row 2; now the caller never observes half-updated chains
        np.testing.assert_array_equal(p_seg, np.ones(c))
        np.testing.assert_array_equal(y_tile, np.zeros((4, c)))

    @pytest.mark.parametrize("backend", ["reference", "numpy"])
    def test_explicit_workspace_and_backend_kwargs(self, small_spd, backend):
        n = small_spd.shape[0]
        c = 64
        l_tile = np.linalg.cholesky(small_spd)
        r_tile = qmc_samples(n, c, rng=2)
        args = lambda: (  # noqa: E731 - tiny test factory
            np.full((n, c), -np.inf), np.full((n, c), 0.7), np.ones(c), np.zeros((n, c))
        )
        ws = KernelWorkspace()
        a1, b1, p1, y1 = args()
        qmc_kernel_tile(l_tile, r_tile, a1, b1, p1, y1, workspace=ws, backend=backend)
        a2, b2, p2, y2 = args()
        qmc_kernel_tile(l_tile, r_tile, a2, b2, p2, y2, workspace=ws, backend=backend)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(y1, y2)


class TestRegistry:
    def test_available_backends_baseline(self):
        names = available_backends()
        assert "numpy" in names and "reference" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name("cuda")
        with pytest.raises(ValueError):
            SolverConfig(backend="cuda")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert get_backend(None).name == "reference"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert get_backend(None).name == "numpy"

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert get_backend("numpy").name == "numpy"

    @pytest.mark.skipif(not numba_missing, reason="numba is installed here")
    def test_numba_falls_back_gracefully(self):
        import repro.core.kernel_backend as kb

        kb._FALLBACK_WARNED = False
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("numba")
        assert backend.name == "numpy"
        # "auto" prefers numba but degrades silently (it is a preference,
        # not a request)
        assert get_backend("auto").name == "numpy"

    def test_config_canonicalizes_backend(self):
        assert SolverConfig(backend="NumPy").backend == "numpy"
        assert SolverConfig().backend is None


class TestPhaseAttribution:
    def test_details_and_timings_expose_phases(self, spd36):
        n = spd36.shape[0]
        reg = TimingRegistry()
        res = pmvn_dense(np.full(n, -np.inf), np.full(n, 0.5), spd36,
                         n_samples=400, tile_size=7, rng=0, timings=reg)
        assert res.details["backend"] == "numpy"
        assert res.details["kernel_seconds"] > 0.0
        assert res.details["gemm_seconds"] >= 0.0
        assert reg.count("kernel_sweep") == 1
        assert reg.count("gemm_propagation") == 1

    def test_solver_probability_accepts_timings(self, spd36):
        n = spd36.shape[0]
        reg = TimingRegistry()
        with MVNSolver(SolverConfig(method="dense", n_samples=300, tile_size=7)) as solver:
            solver.model(spd36).probability(
                np.full(n, -np.inf), np.full(n, 0.5), rng=0, timings=reg
            )
        assert reg.count("factorization") == 1
        assert reg.count("kernel_sweep") == 1


class TestStatsOutVariants:
    def test_norm_cdf_out_bit_identical(self, rng):
        x = rng.standard_normal(257) * 3
        x[0], x[1] = -np.inf, np.inf
        out = np.empty_like(x)
        np.testing.assert_array_equal(norm_cdf(x, out=out), norm_cdf(x))

    def test_norm_ppf_out_bit_identical(self, rng):
        p = rng.random(257)
        p[0], p[1], p[2] = 0.0, 1.0, 1e-300
        out = np.empty_like(p)
        np.testing.assert_array_equal(norm_ppf(p, out=out), norm_ppf(p))

    def test_norm_ppf_out_aliases_input(self, rng):
        p = rng.random(64)
        expected = norm_ppf(p)
        result = norm_ppf(p, out=p)
        assert result is p
        np.testing.assert_array_equal(p, expected)

    def test_norm_cdf_interval_out_bit_identical(self, rng):
        a = rng.standard_normal(129)
        b = a + np.abs(rng.standard_normal(129))
        out = np.empty_like(a)
        np.testing.assert_array_equal(norm_cdf_interval(a, b, out=out), norm_cdf_interval(a, b))

    def test_workspace_reciprocal_diagonal(self, small_spd):
        l_tile = np.linalg.cholesky(small_spd)
        ws = KernelWorkspace()
        ws.ensure(l_tile.shape[0], 4)
        diag = ws.bind_tile(l_tile)
        np.testing.assert_array_equal(diag, np.diagonal(l_tile))
        np.testing.assert_allclose(ws.inv_diag[: len(diag)], 1.0 / diag, rtol=0, atol=0)


class TestInPlaceGemm:
    def test_apply_offdiag_into_matches(self, spd36, rng):
        y = rng.standard_normal((7, 9))
        for method, kwargs in (("dense", {}), ("tlr", {"accuracy": 1e-6})):
            factor = factorize(spd36, method=method, tile_size=7, **kwargs)
            expected = factor.apply_offdiag(2, 0, y)
            out = np.full_like(expected, np.nan)
            result = factor.apply_offdiag_into(2, 0, y, out=out)
            assert result is out
            np.testing.assert_array_equal(out, expected)

    def test_tlr_matmat_out_matches(self, spd36, rng):
        from repro.tlr.matrix import TLRMatrix
        from repro.tlr.operations import tlr_matmat

        tlr = TLRMatrix.from_dense(spd36, 7, accuracy=1e-6)
        x = rng.standard_normal((spd36.shape[0], 5))
        expected = tlr_matmat(tlr, x)
        out = np.full_like(expected, np.nan)
        result = tlr_matmat(tlr, x, out=out)
        assert result is out
        np.testing.assert_array_equal(out, expected)
        with pytest.raises(ValueError, match="out must have shape"):
            tlr_matmat(tlr, x, out=np.empty((3, 3)))
