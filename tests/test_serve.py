"""Tests for the concurrent query-serving subsystem (`repro.serve`).

Five properties pin the design:

* **parity** — served results are bit-identical to direct
  `Model.probability` calls with the same seed, for every kernel backend
  and both factor methods (batching/sharding change the schedule, never
  the estimator);
* **routing** — Sigma-to-shard routing is a deterministic function of the
  covariance *content*, so equal matrices (any dtype/layout/object) warm
  the same shard;
* **micro-batching** — requests sharing a batch key coalesce into one
  `probability_batch` sweep; different keys never share a sweep;
* **backpressure** — `max_pending` is a hard cap: at the limit, `submit`
  blocks or (with `timeout=0`) raises `ServeOverloadedError`;
* **lifecycle** — `close()` drains every submitted future, stops the
  shards (thread and process mode) and makes later submissions fail fast.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.batch.cache import sigma_fingerprint
from repro.core.kernel_backend import available_backends
from repro.serve import (
    QueryBroker,
    ServeConfig,
    ServeError,
    ServeOverloadedError,
    shard_for_fingerprint,
)
from repro.solver import MVNSolver, SolverConfig


def _spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _boxes(n: int, count: int, seed: int = 1):
    rng = np.random.default_rng(seed)
    return [(np.full(n, -np.inf), rng.uniform(0.5, 2.5, n)) for _ in range(count)]


@pytest.fixture
def thread_broker():
    """A small all-defaults thread-mode broker, closed after the test."""
    broker = QueryBroker(
        ServeConfig(n_shards=2, worker_mode="thread", max_batch=8, batch_window=0.005),
        SolverConfig(method="dense", n_samples=200),
    )
    yield broker
    broker.close()


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.n_shards >= 1
        assert config.resolved_worker_mode() in ("thread", "process")

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_shards": 0}, {"max_batch": 0}, {"max_pending": -1},
         {"batch_window": -0.1}, {"worker_mode": "fibers"}, {"cache_entries": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_explicit_mode_is_kept(self):
        assert ServeConfig(worker_mode="thread").resolved_worker_mode() == "thread"
        assert ServeConfig(worker_mode="process").resolved_worker_mode() == "process"

    def test_broker_rejects_wrong_types(self):
        with pytest.raises(TypeError):
            QueryBroker(config={"n_shards": 2})
        with pytest.raises(TypeError):
            QueryBroker(solver_config=42)


class TestServedParity:
    """Served results == direct Model.probability, bit for bit."""

    @pytest.mark.parametrize("method", ["dense", "tlr"])
    def test_parity_per_method(self, method):
        sigma = _spd(12, seed=3)
        boxes = _boxes(12, 6)
        solver_config = SolverConfig(method=method, n_samples=150, tile_size=4)
        with QueryBroker(ServeConfig(n_shards=2, worker_mode="thread"),
                         solver_config) as broker:
            futures = [broker.submit(a, b, sigma, rng=5) for a, b in boxes]
            served = [future.result(timeout=60) for future in futures]
        with MVNSolver(solver_config) as solver:
            model = solver.model(sigma)
            direct = [model.probability(a, b, rng=5) for a, b in boxes]
        for served_result, direct_result in zip(served, direct):
            assert served_result.probability == direct_result.probability
            assert served_result.error == direct_result.error
            assert served_result.method == direct_result.method

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_parity_per_backend(self, backend):
        sigma = _spd(10, seed=4)
        boxes = _boxes(10, 4)
        solver_config = SolverConfig(method="dense", n_samples=120, backend=backend)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread"),
                         solver_config) as broker:
            served = [broker.submit(a, b, sigma, rng=2).result(timeout=60)
                      for a, b in boxes]
        with MVNSolver(solver_config) as solver:
            model = solver.model(sigma)
            for (a, b), served_result in zip(boxes, served):
                direct = model.probability(a, b, rng=2)
                assert served_result.probability == direct.probability
                assert served_result.error == direct.error

    def test_parity_with_means_and_overrides(self, thread_broker):
        sigma = _spd(8, seed=6)
        mean = np.linspace(-0.5, 0.5, 8)
        a, b = _boxes(8, 1)[0]
        served = thread_broker.submit(
            a, b, sigma, mean=mean, n_samples=90, qmc="halton", rng=1
        ).result(timeout=60)
        with MVNSolver(SolverConfig(method="dense", n_samples=200)) as solver:
            direct = solver.model(sigma, mean=mean).probability(
                a, b, n_samples=90, qmc="halton", rng=1
            )
        assert served.probability == direct.probability
        assert served.error == direct.error
        assert served.n_samples == 90

    def test_scalar_mean_matches_vector_mean(self, thread_broker):
        sigma = _spd(6, seed=7)
        a, b = _boxes(6, 1)[0]
        scalar = thread_broker.submit(a, b, sigma, mean=0.25, rng=3).result(timeout=60)
        vector = thread_broker.submit(
            a, b, sigma, mean=np.full(6, 0.25), rng=3
        ).result(timeout=60)
        assert scalar.probability == vector.probability


class TestRouting:
    def test_routing_is_deterministic(self):
        fingerprint = sigma_fingerprint(_spd(6))
        picks = {shard_for_fingerprint(fingerprint, 4) for _ in range(10)}
        assert len(picks) == 1
        assert 0 <= picks.pop() < 4

    def test_routing_covers_shards(self):
        """Many distinct fingerprints must spread over all shards."""
        hits = {
            shard_for_fingerprint(sigma_fingerprint(_spd(4, seed=seed)), 3)
            for seed in range(24)
        }
        assert hits == {0, 1, 2}

    def test_single_shard_routes_everything_to_zero(self):
        fingerprint = sigma_fingerprint(_spd(5))
        assert shard_for_fingerprint(fingerprint, 1) == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_for_fingerprint("ab" * 32, 0)

    def test_equal_content_routes_to_one_shard(self, thread_broker):
        """Same values in different objects/dtypes/layouts: one warm shard,
        one factorization."""
        sigma32 = _spd(9, seed=8).astype(np.float32)
        sigma64 = sigma32.astype(np.float64)
        variants = [sigma64, sigma64.copy(), sigma32, np.asfortranarray(sigma64)]
        a, b = _boxes(9, 1)[0]
        for variant in variants:
            thread_broker.submit(a, b, variant, rng=0).result(timeout=60)
        stats = thread_broker.stats()
        active = [s for s in stats.shards if s.requests > 0]
        assert len(active) == 1
        assert active[0].factorize_count == 1
        assert active[0].models == 1


class TestMicroBatching:
    def test_same_key_requests_share_a_sweep(self):
        sigma = _spd(8, seed=9)
        boxes = _boxes(8, 6)
        config = ServeConfig(n_shards=1, worker_mode="thread",
                             max_batch=16, batch_window=0.25)
        with QueryBroker(config, SolverConfig(method="dense", n_samples=100)) as broker:
            futures = [broker.submit(a, b, sigma, rng=0) for a, b in boxes]
            results = [future.result(timeout=60) for future in futures]
        sizes = {result.details["serve"]["batch_size"] for result in results}
        assert sizes == {6}
        assert {result.details["serve"]["shard"] for result in results} == {0}
        stats = broker.stats()
        assert stats.batches == 1
        assert stats.mean_batch_size == pytest.approx(6.0)
        assert 0.0 < stats.batch_fill_ratio <= 1.0

    def test_different_seeds_never_share_a_sweep(self):
        """The batch key includes the seed: mixing seeds in one sweep would
        silently change every estimate (all boxes of a batched sweep draw
        from the batch rng)."""
        sigma = _spd(8, seed=10)
        a, b = _boxes(8, 1)[0]
        config = ServeConfig(n_shards=1, worker_mode="thread",
                             max_batch=16, batch_window=0.05)
        with QueryBroker(config, SolverConfig(method="dense", n_samples=100)) as broker:
            futures = [broker.submit(a, b, sigma, rng=seed) for seed in range(4)]
            results = [future.result(timeout=60) for future in futures]
        assert all(result.details["serve"]["batch_size"] == 1 for result in results)
        assert broker.stats().batches == 4

    def test_max_batch_splits_oversized_buckets(self):
        sigma = _spd(6, seed=11)
        boxes = _boxes(6, 7)
        config = ServeConfig(n_shards=1, worker_mode="thread",
                             max_batch=3, batch_window=0.2)
        with QueryBroker(config, SolverConfig(method="dense", n_samples=80)) as broker:
            futures = [broker.submit(a, b, sigma, rng=0) for a, b in boxes]
            results = [future.result(timeout=60) for future in futures]
        sizes = sorted(result.details["serve"]["batch_size"] for result in results)
        assert len(sizes) == 7 and max(sizes) <= 3
        stats = broker.stats()
        assert stats.completed == 7
        assert stats.batches >= 3

    def test_backlog_coalesces_even_with_zero_window(self, monkeypatch):
        """A queued-up backlog must micro-batch no matter how small the
        batch window: the window bounds dispatcher idling, not batch fill.
        (Regression: the dispatcher used to ingest one request per loop
        iteration and flush expired buckets in between, so with
        batch_window=0 every request became a singleton batch.)"""
        release = threading.Event()
        original = QueryBroker._dispatch_loop

        def held_back(self):
            release.wait(10)
            original(self)

        monkeypatch.setattr(QueryBroker, "_dispatch_loop", held_back)
        sigma = _spd(8, seed=21)
        boxes = _boxes(8, 8)
        config = ServeConfig(n_shards=1, worker_mode="thread",
                             max_batch=64, batch_window=0.0)
        broker = QueryBroker(config, SolverConfig(method="dense", n_samples=100))
        try:
            # everything queues before the dispatcher wakes up...
            futures = [broker.submit(a, b, sigma, rng=0) for a, b in boxes]
            release.set()
            results = [future.result(timeout=60) for future in futures]
        finally:
            release.set()
            broker.close()
        # ...and the whole backlog lands in one probability_batch sweep
        assert broker.stats().batches == 1
        assert {result.details["serve"]["batch_size"] for result in results} == {8}

    def test_serve_details_stamped(self, thread_broker):
        sigma = _spd(5, seed=12)
        a, b = _boxes(5, 1)[0]
        result = thread_broker.submit(a, b, sigma, rng=0).result(timeout=60)
        serve_details = result.details["serve"]
        assert set(serve_details) == {"shard", "batch_size", "batch_fill",
                                      "queue_seconds", "fusion"}
        assert serve_details["fusion"] in ("fused", "interleaved")
        assert serve_details["queue_seconds"] >= 0.0
        # the batched-path metadata is preserved alongside
        assert result.details["batch_size"] == serve_details["batch_size"]


class TestBackpressure:
    def test_overload_raises_with_zero_timeout(self):
        sigma = _spd(6, seed=13)
        a, b = _boxes(6, 1)[0]
        config = ServeConfig(n_shards=1, worker_mode="thread",
                             max_pending=2, max_batch=2, batch_window=0.5)
        broker = QueryBroker(config, SolverConfig(method="dense", n_samples=20_000))
        try:
            broker.submit(a, b, sigma, rng=0, timeout=0)
            broker.submit(a, b, sigma, rng=1, timeout=0)
            with pytest.raises(ServeOverloadedError, match="queue is full"):
                broker.submit(a, b, sigma, rng=2, timeout=0)
            assert broker.stats().rejected == 1
        finally:
            broker.close()
        # the two accepted requests still completed on close
        assert broker.stats().completed == 2

    def test_blocking_submit_waits_for_capacity(self):
        sigma = _spd(6, seed=14)
        a, b = _boxes(6, 1)[0]
        config = ServeConfig(n_shards=1, worker_mode="thread",
                             max_pending=1, max_batch=1, batch_window=0.0)
        with QueryBroker(config, SolverConfig(method="dense", n_samples=500)) as broker:
            futures = []
            # more submissions than capacity: each blocks until the previous
            # request finished, and all of them eventually succeed
            for seed in range(4):
                futures.append(broker.submit(a, b, sigma, rng=seed, timeout=30))
            results = [future.result(timeout=60) for future in futures]
        assert len(results) == 4
        assert broker.stats().completed == 4
        assert broker.stats().max_queue_depth <= 1


class TestLifecycleAndErrors:
    def test_close_drains_and_rejects_new_submissions(self):
        sigma = _spd(7, seed=15)
        boxes = _boxes(7, 5)
        broker = QueryBroker(
            ServeConfig(n_shards=2, worker_mode="thread", batch_window=0.02),
            SolverConfig(method="dense", n_samples=150),
        )
        futures = [broker.submit(a, b, sigma, rng=0) for a, b in boxes]
        broker.close()
        # close() drained: every future resolved without explicit waiting
        assert all(future.done() for future in futures)
        assert broker.stats().queue_depth == 0
        assert broker.closed
        with pytest.raises(RuntimeError, match="closed"):
            broker.submit(boxes[0][0], boxes[0][1], sigma, rng=0)
        with pytest.raises(RuntimeError, match="closed"):
            with broker:
                pass
        broker.close()  # idempotent

    def test_thread_workers_exit_on_close(self):
        before = {thread.name for thread in threading.enumerate()}
        broker = QueryBroker(
            ServeConfig(n_shards=2, worker_mode="thread"),
            SolverConfig(method="dense", n_samples=50),
        )
        broker.close()
        time.sleep(0.05)
        after = {thread.name for thread in threading.enumerate()} - before
        assert not any(name.startswith("repro-serve") for name in after)

    def test_process_mode_serves_and_shuts_down(self):
        sigma = _spd(6, seed=16)
        a, b = _boxes(6, 1)[0]
        broker = QueryBroker(
            ServeConfig(n_shards=2, worker_mode="process", batch_window=0.01),
            SolverConfig(method="dense", n_samples=100),
        )
        try:
            served = broker.submit(a, b, sigma, rng=1).result(timeout=120)
        finally:
            broker.close()
        with MVNSolver(SolverConfig(method="dense", n_samples=100)) as solver:
            direct = solver.model(sigma).probability(a, b, rng=1)
        # bit-identical across the process boundary too
        assert served.probability == direct.probability
        assert served.error == direct.error
        assert all(not shard.worker.is_alive() for shard in broker._pool.shards)

    def test_dead_worker_fails_futures_instead_of_hanging(self):
        """A crashed shard process must not wedge the broker: its in-flight
        futures fail with ServeError and their backpressure slots free up."""
        sigma = _spd(6, seed=20)
        a, b = _boxes(6, 1)[0]
        broker = QueryBroker(
            ServeConfig(n_shards=1, worker_mode="process", batch_window=0.01),
            SolverConfig(method="dense", n_samples=100),
        )
        try:
            # warm the shard up, then kill it out from under the broker
            broker.submit(a, b, sigma, rng=0).result(timeout=120)
            broker._pool.shards[0].worker.terminate()
            broker._pool.shards[0].worker.join(10)
            future = broker.submit(a, b, sigma, rng=1)
            with pytest.raises(ServeError, match="died"):
                future.result(timeout=30)
            assert broker.stats().failed == 1
            assert broker.stats().queue_depth == 0
        finally:
            broker.close(timeout=10)

    def test_shard_failure_rejects_the_future(self, thread_broker):
        indefinite = np.array([[1.0, 2.0], [2.0, 1.0]])  # not positive definite
        future = thread_broker.submit([-np.inf, -np.inf], [0.0, 0.0], indefinite, rng=0)
        with pytest.raises(ServeError, match="shard"):
            future.result(timeout=60)
        assert thread_broker.stats().failed == 1
        # the shard survives and keeps serving good requests
        sigma = _spd(4, seed=17)
        a, b = _boxes(4, 1)[0]
        assert thread_broker.submit(a, b, sigma, rng=0).result(timeout=60).probability > 0

    def test_submit_validation(self, thread_broker):
        sigma = _spd(4, seed=18)
        with pytest.raises(TypeError, match="integer seed"):
            thread_broker.submit([-np.inf] * 4, [0.0] * 4, sigma,
                                 rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="square"):
            thread_broker.submit([-np.inf] * 4, [0.0] * 4, np.zeros((4, 3)))
        with pytest.raises(ValueError, match="length 4"):
            thread_broker.submit([-np.inf] * 3, [0.0] * 3, sigma)
        with pytest.raises(ValueError, match="lower limit exceeds"):
            thread_broker.submit([1.0] * 4, [0.0] * 4, sigma)
        with pytest.raises(ValueError, match="mean"):
            thread_broker.submit([-np.inf] * 4, [0.0] * 4, sigma, mean=np.zeros(5))

    def test_async_submission(self, thread_broker):
        sigma = _spd(5, seed=19)
        a, b = _boxes(5, 1)[0]

        async def query():
            return await thread_broker.submit_async(a, b, sigma, rng=0)

        result = asyncio.run(query())
        assert 0.0 <= result.probability <= 1.0


class TestAsyncServing:
    """`submit_async` under real event loops: gather, cancel, shutdown."""

    def test_concurrent_gather_mixed_fingerprints(self, thread_broker):
        sigmas = [_spd(5, seed=seed) for seed in range(3)]
        boxes = _boxes(5, 6, seed=3)

        async def run():
            coros = [
                thread_broker.submit_async(a, b, sigmas[i % 3], rng=i)
                for i, (a, b) in enumerate(boxes)
            ]
            return await asyncio.gather(*coros)

        results = asyncio.run(run())
        # parity: the same queries submitted synchronously, one at a time
        for i, ((a, b), got) in enumerate(zip(boxes, results)):
            expected = thread_broker.submit(a, b, sigmas[i % 3], rng=i).result()
            assert got.probability == expected.probability
            assert got.error == expected.error

    def test_cancelled_future_does_not_wedge_the_broker(self):
        broker = QueryBroker(
            ServeConfig(n_shards=1, worker_mode="thread", batch_window=0.2),
            SolverConfig(method="dense", n_samples=200),
        )
        try:
            sigma = _spd(4, seed=31)
            a, b = _boxes(4, 1)[0]

            async def cancel_one():
                task = asyncio.ensure_future(
                    broker.submit_async(a, b, sigma, rng=0))
                await asyncio.sleep(0)      # let it get submitted
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task

            asyncio.run(cancel_one())
            # the broker tolerates resolving a cancelled future and the slot
            # is released: later submissions still complete
            result = broker.submit(a, b, sigma, rng=1).result(timeout=60)
            assert 0.0 <= result.probability <= 1.0
            assert broker.stats().queue_depth == 0
        finally:
            broker.close()

    def test_close_drains_in_flight_async_waiters(self):
        broker = QueryBroker(
            ServeConfig(n_shards=2, worker_mode="thread", batch_window=0.01),
            SolverConfig(method="dense", n_samples=2000),
        )
        sigma = _spd(8, seed=32)
        boxes = _boxes(8, 8, seed=5)

        async def run():
            coros = [
                broker.submit_async(a, b, sigma, rng=i)
                for i, (a, b) in enumerate(boxes)
            ]
            gathered = asyncio.gather(*coros)
            # close from a worker thread while the waiters are pending;
            # close() drains, so every future must complete, not error
            closer = asyncio.get_running_loop().run_in_executor(
                None, broker.close)
            results = await gathered
            await closer
            return results

        results = asyncio.run(run())
        assert len(results) == 8
        assert all(0.0 <= r.probability <= 1.0 for r in results)
        assert broker.closed


class TestSigmaAccounting:
    """Ship-once bookkeeping: a resident Sigma is never re-sent."""

    def test_resident_sigma_skips_the_send(self):
        broker = QueryBroker(
            ServeConfig(n_shards=1, worker_mode="thread", batch_window=0.0),
            SolverConfig(method="dense", n_samples=200),
        )
        try:
            sigma = _spd(5, seed=41)
            a, b = _boxes(5, 1)[0]
            for seed in range(4):           # distinct seeds: no batch sharing
                broker.submit(a, b, sigma, rng=seed).result(timeout=60)
            stats = broker.stats()
            assert stats.sigma_sends == 1
            assert stats.sigma_skips >= 1
            assert stats.sigma_bytes == sigma.nbytes
            assert all(s.redundant_sigmas == 0 for s in stats.shards)
        finally:
            broker.close()

    def test_eviction_forces_a_resend_but_never_a_redundant_one(self):
        broker = QueryBroker(
            ServeConfig(n_shards=1, worker_mode="thread", batch_window=0.0,
                        cache_entries=1),
            SolverConfig(method="dense", n_samples=200),
        )
        try:
            first, second = _spd(5, seed=42), _spd(5, seed=43)
            a, b = _boxes(5, 1)[0]
            for sigma in (first, second, first, second):
                broker.submit(a, b, sigma, rng=0).result(timeout=60)
            stats = broker.stats()
            # capacity-1 roster: every alternation evicts, so all four
            # arrivals shipped — but none was redundant at the shard
            assert stats.sigma_sends == 4
            assert all(s.redundant_sigmas == 0 for s in stats.shards)
        finally:
            broker.close()

    def test_stats_dict_roundtrip_preserves_lineage_counters(self):
        from repro.serve.stats import ServeStats

        stats = ServeStats(lineage_routes=3, lineage_fallbacks=1,
                           update_sends=3, update_bytes=1536)
        restored = ServeStats.from_dict(stats.as_dict())
        assert restored.lineage_routes == 3
        assert restored.lineage_fallbacks == 1
        assert restored.update_sends == 3
        assert restored.update_bytes == 1536
        # legacy payloads without the counters read back as zero
        legacy = {k: v for k, v in stats.as_dict().items()
                  if not k.startswith(("lineage", "update"))}
        assert ServeStats.from_dict(legacy).lineage_routes == 0

    def test_stats_dict_roundtrip_preserves_max_batch(self, thread_broker):
        sigma = _spd(4, seed=44)
        a, b = _boxes(4, 1)[0]
        thread_broker.submit(a, b, sigma, rng=0).result(timeout=60)
        stats = thread_broker.stats()
        assert stats.max_batch == 8
        from repro.serve.stats import ServeStats

        restored = ServeStats.from_dict(stats.as_dict())
        assert restored.max_batch == 8
        assert restored.sigma_sends == stats.sigma_sends
        # legacy payloads without the field fall back to the keyword
        legacy = {k: v for k, v in stats.as_dict().items() if k != "max_batch"}
        assert ServeStats.from_dict(legacy, max_batch=5).max_batch == 5


class TestLineageRouting:
    """Updated models follow their parent's shard and ship only rank-k."""

    def _lineage_broker(self, n_shards: int = 2, **config):
        params = dict(n_shards=n_shards, worker_mode="thread",
                      batch_window=0.0)
        params.update(config)
        return QueryBroker(ServeConfig(**params),
                          SolverConfig(method="dense", n_samples=200))

    def test_update_routes_to_parents_shard(self):
        from repro.serve import SigmaUpdate

        sigma = _spd(8, seed=50)
        u = 0.1 * np.random.default_rng(51).standard_normal((8, 2))
        a, b = _boxes(8, 1)[0]
        broker = self._lineage_broker()
        try:
            parent = broker.submit(a, b, sigma, rng=0).result(timeout=60)
            child = broker.submit(a, b, SigmaUpdate(sigma, u),
                                  rng=0).result(timeout=60)
            home = parent.details["serve"]["shard"]
            assert child.details["serve"]["shard"] == home
            assert child.details["serve"]["lineage"]["warm"] is True
            assert child.details["serve"]["lineage"]["parent"] == \
                sigma_fingerprint(sigma)
            assert child.details["lineage"]["rank"] == 2
            stats = broker.stats()
            assert stats.lineage_routes == 1
            assert stats.lineage_fallbacks == 0
            # the up-date ran on the parent's shard, nowhere else
            assert stats.shards[home].updates == 1
            assert sum(s.updates for s in stats.shards) == 1
        finally:
            broker.close()

    def test_ship_once_counts_rank_k_payload_not_sigma(self):
        from repro.serve import SigmaUpdate

        sigma = _spd(8, seed=52)
        u = 0.1 * np.random.default_rng(53).standard_normal((8, 3))
        a, b = _boxes(8, 1)[0]
        broker = self._lineage_broker(n_shards=1)
        try:
            broker.submit(a, b, sigma, rng=0).result(timeout=60)
            for seed in range(2):       # distinct seeds: no batch sharing
                broker.submit(a, b, SigmaUpdate(sigma, u),
                              rng=seed).result(timeout=60)
            stats = broker.stats()
            # the full covariance shipped exactly once (the parent); the
            # update path moved only the n x k payload, and only once —
            # the second submission found the child resident
            assert stats.sigma_sends == 1
            assert stats.sigma_bytes == sigma.nbytes
            assert stats.update_sends == 1
            assert stats.update_bytes == u.nbytes
            assert stats.sigma_skips >= 1
            assert all(s.redundant_sigmas == 0 for s in stats.shards)
        finally:
            broker.close()

    def test_chain_colocates_on_the_root_shard(self):
        from repro.serve import SigmaUpdate

        sigma = _spd(8, seed=54)
        rng = np.random.default_rng(55)
        a, b = _boxes(8, 1)[0]
        broker = self._lineage_broker()
        try:
            parent = broker.submit(a, b, sigma, rng=0).result(timeout=60)
            home = parent.details["serve"]["shard"]
            chain = None
            for step in range(3):
                u = 0.05 * rng.standard_normal((8, 1))
                chain = SigmaUpdate(chain if chain is not None else sigma,
                                    u, downdate=bool(step % 2))
                result = broker.submit(a, b, chain, rng=0).result(timeout=60)
                assert result.details["serve"]["shard"] == home
                assert result.details["serve"]["lineage"]["warm"] is True
                assert result.details["lineage"]["depth"] == step + 1
            stats = broker.stats()
            assert stats.lineage_routes == 3
            assert stats.shards[home].updates == 3
        finally:
            broker.close()

    def test_cold_fallback_when_parent_never_seen(self):
        from repro.serve import SigmaUpdate

        sigma = _spd(8, seed=56)
        u = 0.1 * np.random.default_rng(57).standard_normal((8, 2))
        a, b = _boxes(8, 1)[0]
        broker = self._lineage_broker(n_shards=1)
        try:
            # the parent was never submitted: the broker must assemble the
            # child covariance and ship it like any other Sigma
            result = broker.submit(a, b, SigmaUpdate(sigma, u),
                                   rng=0).result(timeout=60)
            stats = broker.stats()
            assert stats.lineage_fallbacks == 1
            assert stats.lineage_routes == 0
            assert result.details["serve"]["lineage"]["warm"] is False
            # the cold path factorizes from scratch: bit-identical to a
            # direct model of the assembled child covariance
            with MVNSolver(SolverConfig(method="dense", n_samples=200)) as solver:
                direct = solver.model(sigma + u @ u.T).probability(a, b, rng=0)
            assert result.probability == direct.probability
        finally:
            broker.close()

    def test_dead_parent_shard_fails_over_to_refactorization(self):
        """Killing the shard that holds a lineage chain must not wedge
        updated-model queries: they fail over to a cold refactorization on
        the child's own hash route."""
        from repro import lineage_fingerprint
        from repro.serve import SigmaUpdate

        n = 8
        sigma = _spd(n, seed=58)
        a, b = _boxes(n, 1)[0]
        root_fp = sigma_fingerprint(sigma)
        home = shard_for_fingerprint(root_fp, 2)
        # pick an update whose *own* fingerprint routes to the other shard,
        # so the failover lands somewhere alive deterministically
        rng = np.random.default_rng(59)
        for _ in range(64):
            u = 0.1 * rng.standard_normal((n, 2))
            child_fp = lineage_fingerprint(root_fp, u)
            if shard_for_fingerprint(child_fp, 2) != home:
                break
        else:  # pragma: no cover - 2^-64
            pytest.fail("no update matrix routed away from the root shard")

        broker = QueryBroker(
            ServeConfig(n_shards=2, worker_mode="process", batch_window=0.01),
            SolverConfig(method="dense", n_samples=100),
        )
        try:
            broker.submit(a, b, sigma, rng=0).result(timeout=120)
            broker._pool.shards[home].worker.terminate()
            broker._pool.shards[home].worker.join(10)
            # wait for the collector's liveness check to declare the death
            deadline = time.perf_counter() + 30
            while home not in broker._dead_shards:
                if time.perf_counter() > deadline:  # pragma: no cover
                    pytest.fail("broker never noticed the dead shard")
                time.sleep(0.1)
            result = broker.submit(a, b, SigmaUpdate(sigma, u),
                                   rng=0).result(timeout=120)
            assert result.details["serve"]["shard"] != home
            assert result.details["serve"]["lineage"]["warm"] is False
            stats = broker.stats()
            assert stats.lineage_fallbacks == 1
            assert stats.lineage_routes == 0
        finally:
            broker.close(timeout=10)

    def test_sigma_update_validation(self, thread_broker):
        from repro.serve import SigmaUpdate

        sigma = _spd(4, seed=60)
        with pytest.raises(ValueError, match="square"):
            SigmaUpdate(np.zeros((4, 3)), np.ones(4))
        with pytest.raises(ValueError, match="rows"):
            SigmaUpdate(sigma, np.ones((5, 1)))
        with pytest.raises(ValueError, match="finite"):
            SigmaUpdate(sigma, np.full(4, np.nan))
        update = SigmaUpdate(sigma, np.ones(4), downdate=True)
        assert update.n == 4
        np.testing.assert_allclose(update.assemble(), sigma - np.ones((4, 4)))
        nested = SigmaUpdate(update, 2.0 * np.ones(4))
        np.testing.assert_allclose(nested.assemble(),
                                   sigma - np.ones((4, 4)) + 4.0 * np.ones((4, 4)))
