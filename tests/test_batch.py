"""Tests for the batched evaluation subsystem (repro.batch)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.crd as crd_module
from repro import confidence_region, factorize, mvn_probability
from repro.batch import (
    FactorCache,
    boxes_from_arrays,
    load_boxes,
    mvn_probability_batch,
    sigma_fingerprint,
)
from repro.core.crd import _standardized_problem, marginal_exceedance
from repro.core.pmvn import PMVNOptions, pmvn_integrate, pmvn_integrate_batch
from repro.kernels import ExponentialKernel, Geometry, build_covariance


@pytest.fixture
def batch_sigma() -> np.ndarray:
    geom = Geometry.regular_grid(6, 6)
    return build_covariance(ExponentialKernel(1.0, 0.2), geom.locations, nugget=1e-6)


def _boxes(n: int, count: int, seed: int = 7) -> list[tuple[np.ndarray, np.ndarray]]:
    rng = np.random.default_rng(seed)
    return [(np.full(n, -np.inf), rng.uniform(0.3, 2.0, n)) for _ in range(count)]


class TestBatchMatchesSingles:
    @pytest.mark.parametrize("method", ["dense", "tlr", "sov", "mc"])
    def test_probabilities_and_errors_match(self, batch_sigma, method):
        n = batch_sigma.shape[0]
        boxes = _boxes(n, 4)
        singles = [
            mvn_probability(a, b, batch_sigma, method=method, n_samples=300, rng=11)
            for a, b in boxes
        ]
        batched = mvn_probability_batch(boxes, batch_sigma, method=method, n_samples=300, rng=11)
        assert len(batched) == len(boxes)
        for single, batch_result in zip(singles, batched):
            assert batch_result.probability == pytest.approx(single.probability, rel=1e-10, abs=1e-300)
            assert batch_result.error == pytest.approx(single.error, rel=1e-10, abs=1e-300)
            assert batch_result.method == single.method
        for idx, batch_result in enumerate(batched):
            assert batch_result.details["batch_index"] == idx
            assert batch_result.details["batch_size"] == len(boxes)

    def test_wave_splitting_does_not_change_results(self, batch_sigma):
        n = batch_sigma.shape[0]
        boxes = _boxes(n, 5)
        one_wave = mvn_probability_batch(boxes, batch_sigma, n_samples=200, rng=3)
        waved = mvn_probability_batch(
            boxes, batch_sigma, n_samples=200, rng=3, max_workspace_cols=200
        )
        for a_res, b_res in zip(one_wave, waved):
            assert a_res.probability == b_res.probability

    def test_chain_block_does_not_change_results(self, batch_sigma):
        n = batch_sigma.shape[0]
        boxes = _boxes(n, 3)
        wide = mvn_probability_batch(boxes, batch_sigma, n_samples=256, rng=5, chain_block=256)
        narrow = mvn_probability_batch(boxes, batch_sigma, n_samples=256, rng=5, chain_block=17)
        for w_res, n_res in zip(wide, narrow):
            assert w_res.probability == pytest.approx(n_res.probability, rel=1e-10)

    def test_shared_and_per_box_means(self, batch_sigma):
        n = batch_sigma.shape[0]
        boxes = _boxes(n, 3)
        mu_shared = np.linspace(-0.2, 0.3, n)
        singles = [
            mvn_probability(a, b, batch_sigma, method="dense", n_samples=200, rng=2, mean=mu_shared)
            for a, b in boxes
        ]
        batched = mvn_probability_batch(
            boxes, batch_sigma, method="dense", n_samples=200, rng=2, means=mu_shared
        )
        for single, batch_result in zip(singles, batched):
            assert batch_result.probability == pytest.approx(single.probability, rel=1e-12)

        per_box = np.vstack([mu_shared * scale for scale in (0.5, 1.0, 1.5)])
        singles = [
            mvn_probability(a, b, batch_sigma, method="dense", n_samples=200, rng=2, mean=mu)
            for (a, b), mu in zip(boxes, per_box)
        ]
        batched = mvn_probability_batch(
            boxes, batch_sigma, method="dense", n_samples=200, rng=2, means=per_box
        )
        for single, batch_result in zip(singles, batched):
            assert batch_result.probability == pytest.approx(single.probability, rel=1e-12)

    def test_mean_vector_as_list_matches_single_calls(self, batch_sigma):
        """A plain-list mean vector means the same thing as in mvn_probability."""
        n = batch_sigma.shape[0]
        boxes = _boxes(n, 2)
        mu_list = list(np.linspace(-0.2, 0.3, n))
        singles = [
            mvn_probability(a, b, batch_sigma, method="dense", n_samples=150, rng=4, mean=mu_list)
            for a, b in boxes
        ]
        batched = mvn_probability_batch(
            boxes, batch_sigma, method="dense", n_samples=150, rng=4, means=mu_list
        )
        for single, batch_result in zip(singles, batched):
            assert batch_result.probability == pytest.approx(single.probability, rel=1e-12)

    def test_per_box_scalar_means(self, batch_sigma):
        n = batch_sigma.shape[0]
        boxes = _boxes(n, 3)
        shifts = [0.0, 0.25, 0.5]
        singles = [
            mvn_probability(a, b, batch_sigma, method="dense", n_samples=150, rng=4, mean=shift)
            for (a, b), shift in zip(boxes, shifts)
        ]
        batched = mvn_probability_batch(
            boxes, batch_sigma, method="dense", n_samples=150, rng=4, means=shifts
        )
        for single, batch_result in zip(singles, batched):
            assert batch_result.probability == pytest.approx(single.probability, rel=1e-12)

    def test_ambiguous_means_rejected(self):
        sigma = np.eye(2) + 0.3 * (np.ones((2, 2)) - np.eye(2))
        boxes = [(np.full(2, -np.inf), np.zeros(2)), (np.full(2, -np.inf), np.ones(2))]
        with pytest.raises(ValueError, match="ambiguous"):
            mvn_probability_batch(boxes, sigma, n_samples=50, means=[0.1, 0.2])

    def test_return_prefix_matches_single_sweeps(self, batch_sigma):
        factor = factorize(batch_sigma, method="dense", tile_size=12)
        n = factor.n
        boxes = _boxes(n, 3)
        options = PMVNOptions(n_samples=150, rng=9, return_prefix=True, chain_block=factor.tile_size)
        batched = pmvn_integrate_batch(boxes, factor, options)
        for (a, b), batch_result in zip(boxes, batched):
            single = pmvn_integrate(a, b, factor, PMVNOptions(n_samples=150, rng=9, return_prefix=True))
            np.testing.assert_allclose(
                batch_result.details["prefix_probabilities"],
                single.details["prefix_probabilities"],
                rtol=1e-12,
            )

    def test_empty_batch(self, batch_sigma):
        assert mvn_probability_batch([], batch_sigma) == []

    def test_one_dimensional_problem(self):
        """Regression: the single-box wrapper must not trip the n == n_boxes
        means-ambiguity check on 1-d problems."""
        sigma = np.array([[2.0]])
        res = mvn_probability([-np.inf], [0.0], sigma, method="dense", n_samples=400, rng=0)
        assert res.probability == pytest.approx(0.5, abs=0.05)
        res = mvn_probability([-np.inf], [0.0], sigma, method="dense", n_samples=400, rng=0,
                              mean=np.array([10.0]))
        assert res.probability == pytest.approx(0.0, abs=1e-6)

    def test_bad_box_raises(self, batch_sigma):
        n = batch_sigma.shape[0]
        with pytest.raises(ValueError, match="box 0"):
            mvn_probability_batch([np.zeros(n)], batch_sigma, n_samples=50)
        with pytest.raises(ValueError):
            mvn_probability_batch([(np.zeros(3), np.ones(3))], batch_sigma, n_samples=50)

    def test_baseline_rejects_factor_and_cache(self, batch_sigma):
        factor = factorize(batch_sigma, method="dense")
        boxes = _boxes(batch_sigma.shape[0], 1)
        with pytest.raises(ValueError, match="does not use a Cholesky factor"):
            mvn_probability_batch(boxes, batch_sigma, method="sov", factor=factor)
        with pytest.raises(ValueError, match="does not use a Cholesky factor"):
            mvn_probability_batch(boxes, batch_sigma, method="sov", cache=FactorCache())
        with pytest.raises(ValueError, match="does not use a Cholesky factor"):
            mvn_probability(boxes[0][0], boxes[0][1], batch_sigma, method="sov", cache=FactorCache())

    def test_unknown_method_message(self, batch_sigma):
        boxes = _boxes(batch_sigma.shape[0], 1)
        with pytest.raises(ValueError, match="unknown method 'bogus'"):
            mvn_probability_batch(boxes, batch_sigma, method="bogus")


class TestFactorCache:
    def test_factorize_once_across_calls(self, batch_sigma):
        n = batch_sigma.shape[0]
        cache = FactorCache()
        boxes = _boxes(n, 3)
        plain = [
            mvn_probability(a, b, batch_sigma, method="dense", n_samples=100, rng=1)
            for a, b in boxes
        ]
        cached = [
            mvn_probability(a, b, batch_sigma, method="dense", n_samples=100, rng=1, cache=cache)
            for a, b in boxes
        ]
        assert cache.factorize_count == 1
        assert cache.misses == 1
        assert cache.hits == len(boxes) - 1
        for p_res, c_res in zip(plain, cached):
            assert c_res.probability == p_res.probability

    def test_batch_and_single_share_cache(self, batch_sigma):
        cache = FactorCache()
        boxes = _boxes(batch_sigma.shape[0], 2)
        mvn_probability_batch(boxes, batch_sigma, method="dense", n_samples=100, rng=1, cache=cache)
        mvn_probability(boxes[0][0], boxes[0][1], batch_sigma, method="dense",
                        n_samples=100, rng=1, cache=cache)
        assert cache.factorize_count == 1

    def test_settings_key_separate_entries(self, batch_sigma):
        cache = FactorCache()
        cache.get_or_factorize(batch_sigma, method="tlr", accuracy=1e-2)
        cache.get_or_factorize(batch_sigma, method="tlr", accuracy=1e-4)
        cache.get_or_factorize(batch_sigma, method="tlr", accuracy=1e-2)
        assert cache.factorize_count == 2
        # dense factors ignore the TLR knobs: one entry regardless of accuracy
        cache.get_or_factorize(batch_sigma, method="dense", accuracy=1e-2)
        cache.get_or_factorize(batch_sigma, method="dense", accuracy=1e-4)
        assert cache.factorize_count == 3

    def test_lru_eviction(self, batch_sigma, small_spd):
        cache = FactorCache(max_entries=1)
        cache.get_or_factorize(batch_sigma, method="dense")
        cache.get_or_factorize(small_spd, method="dense")
        assert len(cache) == 1
        cache.get_or_factorize(batch_sigma, method="dense")  # evicted -> refactorize
        assert cache.factorize_count == 3

    def test_fingerprint_is_content_based(self, batch_sigma):
        assert sigma_fingerprint(batch_sigma) == sigma_fingerprint(batch_sigma.copy())
        perturbed = batch_sigma.copy()
        perturbed[0, 0] += 1e-12
        assert sigma_fingerprint(batch_sigma) != sigma_fingerprint(perturbed)

    def test_content_copy_hits_and_identity_memo_skips_hash(self, batch_sigma, monkeypatch):
        import repro.batch.cache as cache_module

        cache = FactorCache()
        cache.get_or_factorize(batch_sigma, method="dense")
        # an equal-content copy (different object) must still hit
        cache.get_or_factorize(batch_sigma.copy(), method="dense")
        assert cache.factorize_count == 1 and cache.hits == 1
        # same object again: served from the identity memo, no re-hash
        hashed = []
        original = cache_module.sigma_fingerprint
        monkeypatch.setattr(
            cache_module, "sigma_fingerprint", lambda s: hashed.append(1) or original(s)
        )
        cache.get_or_factorize(batch_sigma, method="dense")
        assert cache.hits == 2
        assert hashed == []

    def test_fingerprint_normalizes_dtype_and_layout(self, batch_sigma):
        """Equal matrices must fingerprint identically regardless of dtype
        width or memory layout — a float32 matrix and the float64 matrix
        holding the same values must not miss the cache (or land on
        different serve shards)."""
        sigma32 = batch_sigma.astype(np.float32)
        sigma64 = sigma32.astype(np.float64)  # exact upcast: equal values
        reference = sigma_fingerprint(sigma64)
        assert sigma_fingerprint(sigma32) == reference
        # Fortran-ordered (non-C-contiguous) copy of the same values
        assert sigma_fingerprint(np.asfortranarray(sigma64)) == reference
        # strided view: every element of a zero-padded embedding
        embedded = np.zeros((2 * sigma64.shape[0], 2 * sigma64.shape[1]))
        embedded[::2, ::2] = sigma64
        assert sigma_fingerprint(embedded[::2, ::2]) == reference
        # nested lists normalize the same way
        assert sigma_fingerprint(sigma64.tolist()) == reference
        # genuinely different values must still miss
        assert sigma_fingerprint(batch_sigma) != reference

    def test_cache_hits_across_dtype_and_layout(self, batch_sigma):
        sigma32 = batch_sigma.astype(np.float32)
        sigma64 = sigma32.astype(np.float64)
        cache = FactorCache()
        first = cache.get_or_factorize(sigma64, method="dense")
        again = cache.get_or_factorize(sigma32, method="dense")
        fortran = cache.get_or_factorize(np.asfortranarray(sigma64), method="dense")
        assert first is again is fortran
        assert cache.factorize_count == 1 and cache.hits == 2

    def test_fingerprint_memo_size_validation(self):
        from repro.batch import FingerprintMemo

        with pytest.raises(ValueError):
            FingerprintMemo(size=0)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            FactorCache(max_entries=0)


class TestConfidenceRegionBatched:
    def _field(self):
        geom = Geometry.regular_grid(6, 6)
        sigma = build_covariance(ExponentialKernel(1.0, 0.15), geom.locations, nugget=1e-6)
        mean = np.linspace(-0.5, 1.0, sigma.shape[0])
        return sigma, mean, 0.4

    def test_sequential_factorizes_once(self, monkeypatch):
        sigma, mean, threshold = self._field()
        calls = []
        original = crd_module.factorize
        monkeypatch.setattr(
            crd_module, "factorize", lambda *a, **k: calls.append(1) or original(*a, **k)
        )
        confidence_region(
            sigma, mean, threshold, algorithm="sequential", n_samples=100, rng=3,
            levels=np.arange(1, sigma.shape[0] + 1, 6),
        )
        assert len(calls) == 1

    def test_sequential_matches_historical_loop(self):
        """The batched prefix evaluation reproduces the seed's per-prefix loop."""
        sigma, mean, threshold = self._field()
        n = sigma.shape[0]
        levels = np.arange(1, n + 1, 6)
        result = confidence_region(
            sigma, mean, threshold, method="dense", algorithm="sequential",
            n_samples=200, rng=3, levels=levels,
        )

        # the historical implementation: one pmvn_integrate call per prefix
        p_marginal = marginal_exceedance(mean, np.diag(sigma), threshold)
        order = np.argsort(-p_marginal, kind="stable")
        corr_ord, a_std = _standardized_problem(sigma, mean, threshold, order)
        corr_ord[np.diag_indices_from(corr_ord)] += 1e-8
        factor = crd_module.factorize(corr_ord, method="dense")
        b = np.full(n, np.inf)
        sizes = np.unique(np.clip(np.asarray(levels, dtype=int), 1, n))
        prob_at = []
        for size in sizes:
            a_vec = np.full(n, -np.inf)
            a_vec[:size] = a_std[:size]
            res = pmvn_integrate(a_vec, b, factor, PMVNOptions(n_samples=200, rng=3))
            prob_at.append(res.probability)
        prefix_prob = np.interp(np.arange(1, n + 1), sizes, prob_at)
        expected = np.empty(n)
        expected[order] = np.minimum.accumulate(prefix_prob)

        np.testing.assert_allclose(result.confidence_function, expected, rtol=1e-12)

    def test_cache_shared_across_detections(self):
        sigma, mean, threshold = self._field()
        cache = FactorCache()
        first = confidence_region(sigma, mean, threshold, n_samples=100, rng=1, cache=cache)
        second = confidence_region(sigma, mean, threshold, n_samples=100, rng=1, cache=cache)
        assert cache.factorize_count == 1
        np.testing.assert_allclose(first.confidence_function, second.confidence_function)


class TestBoxIO:
    def test_boxes_from_arrays(self):
        boxes = boxes_from_arrays(np.zeros((3, 4)), np.ones((3, 4)))
        assert len(boxes) == 3
        assert boxes[1][0].shape == (4,)
        with pytest.raises(ValueError, match="matching shapes"):
            boxes_from_arrays(np.zeros((3, 4)), np.ones((2, 4)))

    def test_load_npz_and_synonyms(self, tmp_path):
        lower, upper = np.zeros((2, 3)), np.ones((2, 3))
        np.savez(tmp_path / "lu.npz", lower=lower, upper=upper)
        np.savez(tmp_path / "ab.npz", a=lower, b=upper)
        for name in ("lu.npz", "ab.npz"):
            boxes = load_boxes(tmp_path / name)
            assert len(boxes) == 2
            np.testing.assert_array_equal(boxes[0][1], np.ones(3))
        np.savez(tmp_path / "bad.npz", x=lower)
        with pytest.raises(ValueError, match="lower"):
            load_boxes(tmp_path / "bad.npz")

    def test_load_npy_stacked(self, tmp_path):
        stacked = np.stack([np.zeros((2, 3)), np.ones((2, 3))], axis=1)
        np.save(tmp_path / "boxes.npy", stacked)
        boxes = load_boxes(tmp_path / "boxes.npy")
        assert len(boxes) == 2
        np.save(tmp_path / "bad.npy", np.zeros((2, 3)))
        with pytest.raises(ValueError, match="n_boxes, 2, n"):
            load_boxes(tmp_path / "bad.npy")

    def test_load_text(self, tmp_path):
        path = tmp_path / "boxes.txt"
        path.write_text("-inf -inf 1.0 2.0\n0.0 0.0 3.0 4.0\n")
        boxes = load_boxes(path)
        assert len(boxes) == 2
        assert np.isneginf(boxes[0][0]).all()
        np.testing.assert_array_equal(boxes[1][1], [3.0, 4.0])
        (tmp_path / "odd.txt").write_text("1.0 2.0 3.0\n")
        with pytest.raises(ValueError, match="2\\*n"):
            load_boxes(tmp_path / "odd.txt")


class TestBatchCLI:
    def test_batch_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        lower = np.full((3, 36), -np.inf)
        upper = np.tile(np.linspace(0.8, 1.6, 3)[:, None], (1, 36))
        np.savez(tmp_path / "boxes.npz", lower=lower, upper=upper)
        out_path = tmp_path / "out.npz"
        code = main([
            "batch", "--boxes", str(tmp_path / "boxes.npz"), "--grid", "6",
            "--samples", "100", "--method", "dense", "--save", str(out_path),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "3 boxes" in captured
        assert "boxes/s" in captured
        saved = np.load(out_path)
        assert saved["probabilities"].shape == (3,)
        assert np.all(np.diff(saved["probabilities"]) >= 0)  # wider boxes, larger p

    def test_batch_dimension_mismatch(self, tmp_path):
        from repro.cli import main

        np.savez(tmp_path / "boxes.npz", lower=np.zeros((1, 5)), upper=np.ones((1, 5)))
        with pytest.raises(SystemExit, match="dimension"):
            main(["batch", "--boxes", str(tmp_path / "boxes.npz"), "--grid", "6"])
