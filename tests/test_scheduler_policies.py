"""Property and invariant tests for the scheduler policies.

Three kinds of guarantees are exercised:

* **queue invariants** — randomized, seeded operation sequences (with a
  minimal-failing-prefix shrinker, so failures reproduce small) check the
  per-policy ordering rules: FIFO order, priority never inverted, b-level
  rank order, locality routing, work-stealing placement;
* **concurrency** — N threads hammering one scheduler conserve tasks: every
  push is popped exactly once, nothing is lost, duplicated or invented;
* **determinism** — the policy simulator replays identically, and real
  threaded executions are bit-identical across policies (dependency edges
  fix the operation order; scheduling only moves wall time).

The stress tests (8 workers, 500+ tasks under every policy) are marked
``slow`` and bound their wall time with watchdog joins (the ``timeout``
marker is advisory: pytest-timeout is not a dependency).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime import (
    ACCEPTED_POLICIES,
    INFORMATION_MODES,
    POLICIES,
    POLICY_ALIASES,
    READ,
    READWRITE,
    WRITE,
    BlindEstimator,
    BLevelScheduler,
    DataHandle,
    ExactEstimator,
    ExecutionTrace,
    FifoScheduler,
    LocalityScheduler,
    ModelEstimator,
    PriorityScheduler,
    Runtime,
    Task,
    TaskGraph,
    WorkStealScheduler,
    canonical_policy,
    make_estimator,
    make_scheduler,
)

ALL_POLICIES = tuple(sorted(POLICIES))


# -- seeded generators (shrinking-friendly) ---------------------------------------


def random_tasks(seed: int, n: int, n_workers: int = 4, homed: bool = False) -> list[Task]:
    """``n`` tasks with seeded random priorities/costs (and homes)."""
    rng = np.random.default_rng(seed)
    tasks = []
    for i in range(n):
        accesses = []
        if homed:
            home = int(rng.integers(0, n_workers))
            accesses = [(DataHandle(name=f"h{i}", home=home), WRITE)]
        tasks.append(
            Task(
                lambda: None,
                accesses=accesses,
                name=f"t{i}",
                priority=int(rng.integers(0, 10)),
                cost=float(rng.uniform(0.1, 2.0)),
            )
        )
    return tasks


def shrink_to_minimal_prefix(ops, fails) -> list:
    """Smallest failing prefix of ``ops`` (linear scan: prefixes nest)."""
    for length in range(1, len(ops) + 1):
        if fails(ops[:length]):
            return list(ops[:length])
    return list(ops)


def run_ops(scheduler, ops):
    """Replay a push/pop operation sequence; return the pop outcomes."""
    queued: list[Task] = []
    popped = []
    for kind, payload in ops:
        if kind == "push":
            scheduler.push(payload)
            queued.append(payload)
        else:
            task = scheduler.pop(payload)
            if task is not None:
                queued.remove(task)
            popped.append((task, [t.priority for t in queued]))
    return popped


def priority_op_sequence(seed: int, n_ops: int = 60):
    """A seeded random interleaving of pushes and pops."""
    rng = np.random.default_rng(seed)
    tasks = iter(random_tasks(seed, n_ops))
    ops = []
    for _ in range(n_ops):
        if rng.random() < 0.6:
            ops.append(("push", next(tasks)))
        else:
            ops.append(("pop", int(rng.integers(0, 4))))
    return ops


# -- the alias table (satellite: the once-undocumented "ws" alias) ----------------


class TestPolicyRegistry:
    def test_alias_table_pinned(self):
        """The full alias table is public API — additions are deliberate."""
        assert POLICY_ALIASES == {
            "fifo": "fifo",
            "eager": "fifo",
            "prio": "prio",
            "priority": "prio",
            "locality": "locality",
            "dmda": "locality",
            "blevel": "blevel",
            "b-level": "blevel",
            "critical-path": "blevel",
            "heft": "blevel",
            "worksteal": "worksteal",
            "ws": "worksteal",
            "steal": "worksteal",
        }

    def test_ws_alias_routes_to_worksteal(self):
        """``"ws"`` is documented and resolves to the work-stealing policy."""
        assert canonical_policy("ws") == "worksteal"
        assert isinstance(make_scheduler("ws", 2), WorkStealScheduler)
        assert "ws" in make_scheduler.__doc__

    def test_accepted_policies_is_sorted_alias_set(self):
        assert ACCEPTED_POLICIES == tuple(sorted(POLICY_ALIASES))

    def test_every_alias_resolves_to_known_class(self):
        for alias in POLICY_ALIASES:
            assert canonical_policy(alias) in POLICIES

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_factory_returns_named_policy(self, policy):
        scheduler = make_scheduler(policy, 3)
        assert isinstance(scheduler, POLICIES[policy])
        assert scheduler.name == policy
        assert scheduler.n_workers == 3

    def test_canonicalization_strips_and_lowercases(self):
        assert canonical_policy("  HEFT ") == "blevel"
        assert canonical_policy("Eager") == "fifo"

    def test_unknown_policy_error_lists_accepted_names(self):
        with pytest.raises(ValueError, match="worksteal"):
            canonical_policy("newest-first")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo", 0)


# -- ordering invariants ----------------------------------------------------------


class TestPriorityInvariant:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_never_pops_lower_while_higher_queued(self, seed):
        """Property: a popped task has the max priority among queued tasks."""
        ops = priority_op_sequence(seed)

        def fails(prefix) -> bool:
            outcomes = run_ops(PriorityScheduler(4), prefix)
            return any(
                task is not None and remaining and task.priority < max(remaining)
                for task, remaining in outcomes
            )

        if fails(ops):
            minimal = shrink_to_minimal_prefix(ops, fails)
            pytest.fail(
                f"priority inversion (seed={seed}); minimal failing prefix "
                f"({len(minimal)} ops): {[(k, getattr(p, 'name', p)) for k, p in minimal]}"
            )

    def test_equal_priorities_pop_in_submission_order(self):
        s = PriorityScheduler()
        tasks = [Task(lambda: None, name=f"t{i}", priority=5) for i in range(6)]
        for t in tasks:
            s.push(t)
        assert [s.pop() for _ in tasks] == tasks

    def test_pop_empty_returns_none(self):
        assert PriorityScheduler().pop() is None


class TestBLevelOrdering:
    def _chain_and_leaves(self):
        """A 3-deep chain (long critical path) plus cheap independent leaves."""
        graph = TaskGraph()
        h = DataHandle(name="chain")
        chain = [
            graph.add_task(Task(lambda: None, [(h, READWRITE)], name=f"c{i}", cost=1.0))
            for i in range(3)
        ]
        leaves = [
            graph.add_task(Task(lambda: None, name=f"leaf{i}", cost=0.1, priority=9))
            for i in range(3)
        ]
        return graph, chain, leaves

    def test_critical_chain_pops_before_cheap_leaves(self):
        graph, chain, leaves = self._chain_and_leaves()
        s = BLevelScheduler(2)
        s.prepare(graph)
        for t in (*leaves, chain[0]):  # ready set: all leaves plus the chain head
            s.push(t)
        assert s.pop() is chain[0], "the critical-path head must pop first"

    def test_ranks_decrease_along_chain(self):
        graph, chain, _ = self._chain_and_leaves()
        levels = graph.blevels()
        assert levels[chain[0]] > levels[chain[1]] > levels[chain[2]]

    def test_blind_estimator_degrades_to_depth(self):
        graph, chain, _ = self._chain_and_leaves()
        levels = graph.blevels(BlindEstimator().duration)
        assert levels[chain[0]] == pytest.approx(3.0)  # 3 unit-duration hops

    def test_unprepared_scheduler_falls_back_to_priority(self):
        s = BLevelScheduler(2)
        low = Task(lambda: None, priority=1)
        high = Task(lambda: None, priority=8)
        s.push(low)
        s.push(high)
        assert s.pop() is high


class TestLocalityRouting:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_home_tasks_served_before_shared(self, seed):
        """Property: while worker w's queue is non-empty, w pops its own."""
        n_workers = 4
        s = LocalityScheduler(n_workers)
        tasks = random_tasks(seed, 24, n_workers=n_workers, homed=True)
        shared = [Task(lambda: None, name=f"s{i}") for i in range(6)]
        for t in (*tasks, *shared):
            s.push(t)
        homes = {t: t.written_handles()[0].home for t in tasks}
        per_worker = {w: sum(1 for t in tasks if homes[t] == w) for w in range(n_workers)}
        for w in range(n_workers):
            for _ in range(per_worker[w]):
                popped = s.pop(w)
                assert homes[popped] == w, "home-tagged work must precede shared"

    def test_homeless_tasks_route_to_shared_queue(self):
        trace = ExecutionTrace()
        s = LocalityScheduler(2, trace=trace)
        s.push(Task(lambda: None))
        assert trace.sched_events[-1].reason == "shared"

    def test_steal_is_last_resort_and_traced(self):
        trace = ExecutionTrace()
        s = LocalityScheduler(2, trace=trace)
        s.push(Task(lambda: None, [(DataHandle(home=0), WRITE)], name="homed"))
        assert s.pop(1) is not None  # worker 1 has nothing local/shared: steals
        assert trace.sched_events[-1].kind == "steal"
        assert trace.sched_events[-1].reason == "steal:0"
        assert trace.steal_count() == 1


class TestWorkStealPlacement:
    def test_affinity_follows_predecessor_worker(self):
        graph = TaskGraph()
        h = DataHandle(name="tile")
        pred = graph.add_task(Task(lambda: None, [(h, WRITE)], name="factor"))
        succ = graph.add_task(Task(lambda: None, [(h, READ)], name="update"))
        trace = ExecutionTrace()
        s = WorkStealScheduler(4, trace=trace)
        s.prepare(graph)
        pred.worker = 2  # the factorization ran on worker 2
        s.push(succ)
        assert trace.sched_events[-1].reason == "affinity:2"
        assert s.pop(2) is succ
        assert trace.sched_events[-1].reason == "local"

    def test_home_hint_used_for_roots(self):
        trace = ExecutionTrace()
        s = WorkStealScheduler(4, trace=trace)
        s.push(Task(lambda: None, [(DataHandle(home=3), WRITE)], name="root"))
        assert trace.sched_events[-1].reason == "home:3"
        assert s.pop(3) is not None

    def test_own_pop_is_lifo_steal_is_fifo(self):
        s = WorkStealScheduler(2)
        first = Task(lambda: None, [(DataHandle(home=0), WRITE)], name="first")
        second = Task(lambda: None, [(DataHandle(home=0), WRITE)], name="second")
        s.push(first)
        s.push(second)
        assert s.pop(0) is second, "owner pops newest (cache-warm, depth-first)"
        assert s.pop(1) is first, "thief steals oldest"

    def test_steals_from_most_loaded_victim(self):
        trace = ExecutionTrace()
        s = WorkStealScheduler(3, trace=trace)
        s.push(Task(lambda: None, [(DataHandle(home=0), WRITE)]))
        for _ in range(3):
            s.push(Task(lambda: None, [(DataHandle(home=1), WRITE)]))
        assert s.pop(2) is not None
        assert trace.sched_events[-1].reason == "steal:1"

    def test_no_graph_no_home_goes_shared(self):
        trace = ExecutionTrace()
        s = WorkStealScheduler(2, trace=trace)
        s.push(Task(lambda: None, name="orphan"))
        assert trace.sched_events[-1].reason == "shared"
        assert s.pop(0) is not None


# -- concurrency: conservation under N racing threads -----------------------------


class TestConcurrentConservation:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_tasks_conserved_across_racing_threads(self, policy):
        """Every pushed task is popped exactly once; none lost or invented."""
        n_workers, n_tasks = 4, 120
        scheduler = make_scheduler(policy, n_workers)
        tasks = random_tasks(seed=17, n=n_tasks, n_workers=n_workers, homed=True)
        popped: list[list[Task]] = [[] for _ in range(n_workers)]
        done = threading.Event()
        remaining = [n_tasks]
        count_lock = threading.Lock()

        def pusher(chunk):
            for task in chunk:
                scheduler.push(task)

        def popper(worker):
            while not done.is_set():
                task = scheduler.pop(worker)
                if task is None:
                    continue
                popped[worker].append(task)
                with count_lock:
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done.set()

        chunks = [tasks[i::2] for i in range(2)]
        threads = [threading.Thread(target=pusher, args=(c,)) for c in chunks] + [
            threading.Thread(target=popper, args=(w,)) for w in range(n_workers)
        ]
        for t in threads:
            t.start()
        assert done.wait(timeout=30.0), f"{policy}: poppers starved — tasks lost"
        for t in threads:
            t.join(timeout=30.0)
        flat = [t for per_worker in popped for t in per_worker]
        assert len(flat) == n_tasks
        assert {t.uid for t in flat} == {t.uid for t in tasks}
        assert len(scheduler) == 0


# -- determinism ------------------------------------------------------------------


class TestReplayDeterminism:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_simulator_replays_identically(self, policy):
        """Same seeded graph, same policy -> same makespan, same event tape."""
        from repro.distributed.simulator import SchedulerSimulator
        from repro.perf.scheduler import scheduler_workload

        tasks = scheduler_workload(n_workers=4, quick=True)
        runs = [SchedulerSimulator(4, policy).run(tasks) for _ in range(2)]
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].events == runs[1].events
        assert runs[0].fetch_seconds == runs[1].fetch_seconds

    def test_simulator_policies_execute_every_task(self):
        from repro.distributed.simulator import SchedulerSimulator
        from repro.perf.scheduler import scheduler_workload

        tasks = scheduler_workload(n_workers=4, quick=True)
        for policy in ALL_POLICIES:
            result = SchedulerSimulator(4, policy).run(tasks)
            assert result.n_tasks == len(tasks)
            assert len(result.events) == len(tasks)
            assert result.makespan > 0

    def test_policies_bit_identical_real_execution(self, medium_spd):
        """Different policies, same numbers: dependency edges fix the math."""
        from repro.tile import TileMatrix, tiled_cholesky

        def factor(policy):
            runtime = Runtime(4, policy=policy)
            tiles = TileMatrix.from_dense(medium_spd, 10, lower_only=True)
            return tiled_cholesky(tiles, runtime).to_dense()

        reference = factor("fifo")
        for policy in ALL_POLICIES[1:]:
            assert np.array_equal(factor(policy), reference), (
                f"policy {policy!r} changed numerical results"
            )


# -- information modes ------------------------------------------------------------


class TestEstimators:
    def test_exact_returns_task_cost(self):
        assert ExactEstimator().duration(Task(lambda: None, cost=2.5)) == 2.5

    def test_exact_falls_back_for_unknown_cost(self):
        assert ExactEstimator().duration(Task(lambda: None)) > 0

    def test_blind_is_unit_cost(self):
        est = BlindEstimator()
        assert est.duration(Task(lambda: None, cost=100.0)) == 1.0
        assert est.mode == "blind"

    def test_model_estimator_ranks_kernels_by_cost(self):
        est = ModelEstimator(tile_size=128)
        gemm = est.duration(Task(lambda: None, tag="gemm"))
        qmc = est.duration(Task(lambda: None, tag="qmc"))
        assert gemm > 0 and qmc > 0

    def test_model_estimator_unknown_tag_falls_back(self):
        assert ModelEstimator().duration(Task(lambda: None, tag="mystery")) > 0

    def test_make_estimator_modes(self):
        for mode in INFORMATION_MODES:
            assert make_estimator(mode).mode == mode
        with pytest.raises(ValueError):
            make_estimator("psychic")


# -- trace events -----------------------------------------------------------------


class TestSchedulingTrace:
    def test_push_and_pop_events_with_queue_depth(self):
        trace = ExecutionTrace()
        s = FifoScheduler(trace=trace)
        s.push(Task(lambda: None, name="a"))
        s.push(Task(lambda: None, name="b"))
        s.pop()
        kinds = [e.kind for e in trace.sched_events]
        depths = [e.queue_depth for e in trace.sched_events]
        assert kinds == ["push", "push", "pop"]
        assert depths == [1, 2, 1]
        assert trace.max_queue_depth() == 2

    def test_placement_counts_exclude_pushes(self):
        trace = ExecutionTrace()
        s = LocalityScheduler(2, trace=trace)
        s.push(Task(lambda: None, [(DataHandle(home=0), WRITE)]))
        s.pop(0)
        counts = trace.placement_counts()
        assert counts == {"local": 1}

    def test_clear_drops_sched_events(self):
        trace = ExecutionTrace()
        s = FifoScheduler(trace=trace)
        s.push(Task(lambda: None))
        trace.clear()
        assert trace.sched_events == []

    def test_summary_includes_steals_and_depth(self):
        summary = ExecutionTrace().summary(n_workers=2)
        assert "steals" in summary and "max_queue_depth" in summary

    def test_runtime_records_sched_events(self):
        rt = Runtime(n_workers=2, policy="worksteal", trace=True)
        for _ in range(10):
            rt.insert_task(lambda: None, tag="noop")
        rt.wait_all()
        events = rt.trace.sched_events
        assert sum(1 for e in events if e.kind == "push") == 10
        assert sum(1 for e in events if e.kind in ("pop", "steal")) == 10

    def test_sched_events_survive_executed_history_bounding(self, monkeypatch):
        """EXECUTED_HISTORY bounds retained Task objects, never the trace."""
        monkeypatch.setattr(Runtime, "EXECUTED_HISTORY", 4)
        rt = Runtime(n_workers=2, trace=True)
        for i in range(30):
            rt.insert_task(lambda: None, name=f"t{i}")
        rt.wait_all()
        assert len(rt.executed_tasks) == 4
        assert len(rt.trace) == 30
        assert sum(1 for e in rt.trace.sched_events if e.kind == "push") == 30


# -- runtime / solver / CLI wiring ------------------------------------------------


class TestPolicyWiring:
    def test_runtime_canonicalizes_policy(self):
        assert Runtime(policy="ws").policy == "worksteal"
        assert Runtime(policy="heft").policy == "blevel"

    def test_runtime_rejects_unknown_policy_and_mode(self):
        with pytest.raises(ValueError):
            Runtime(policy="lifo")
        with pytest.raises(ValueError):
            Runtime(information_mode="psychic")

    def test_solver_config_validates_policy(self):
        from repro.solver import SolverConfig

        assert SolverConfig(policy="steal").policy == "worksteal"
        assert SolverConfig().policy is None
        with pytest.raises(ValueError):
            SolverConfig(policy="newest-first")

    def test_solver_precedence_kwarg_over_config(self):
        from repro.solver import MVNSolver, SolverConfig

        with MVNSolver(SolverConfig(policy="blevel")) as solver:
            assert solver.runtime.policy == "blevel"
        with MVNSolver(SolverConfig(policy="blevel"), policy="fifo") as solver:
            assert solver.runtime.policy == "fifo"
        with MVNSolver() as solver:
            assert solver.runtime.policy == "prio"

    def test_cli_accepts_every_alias(self):
        from repro.cli import build_parser

        parser = build_parser()
        for alias in ACCEPTED_POLICIES:
            args = parser.parse_args(["mvn", "--grid", "4", "--policy", alias])
            assert args.policy == alias


# -- stress: drain without deadlock under every policy ----------------------------


@pytest.mark.slow
@pytest.mark.timeout(120)
class TestStress:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_8_workers_500_tasks_drain_without_deadlock(self, policy):
        """8 workers, 600 tasks in tangled chains: the DAG must drain."""
        rng = np.random.default_rng(hash(policy) % (2**32))
        rt = Runtime(n_workers=8, policy=policy, trace=True)
        handles = [rt.register(np.zeros(1), name=f"h{i}", home=i % 8) for i in range(40)]
        tasks = []
        for i in range(600):
            h = handles[int(rng.integers(0, len(handles)))]
            mode = READWRITE if rng.random() < 0.5 else READ
            tasks.append(rt.insert_task(lambda x: None, (h, mode), name=f"t{i}", tag="stress"))

        finished = []
        worker = threading.Thread(target=lambda: finished.append(rt.wait_all()), daemon=True)
        worker.start()
        worker.join(timeout=90.0)
        assert not worker.is_alive(), f"{policy}: wait_all deadlocked (watchdog hit)"
        assert len(finished) == 1 and len(finished[0]) == 600
        assert len(rt.trace) == 600
        assert rt.trace.tag_counts()["stress"] == 600
