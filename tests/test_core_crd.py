"""Tests for the confidence region detection algorithm (Algorithm 1)."""

import numpy as np
import pytest
from scipy.stats import multivariate_normal, norm

from repro.core import confidence_region, confidence_region_from_posterior, marginal_exceedance
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.stats.posterior import posterior_from_observations


@pytest.fixture
def small_field(rng):
    """A 5x4 grid field with a spatially varying mean (gives non-trivial regions)."""
    geom = Geometry.regular_grid(5, 4)
    kern = ExponentialKernel(1.0, 0.3)
    sigma = build_covariance(kern, geom.locations, nugget=1e-8)
    mean = 1.5 * np.exp(-((geom.locations[:, 0] - 0.2) ** 2 + (geom.locations[:, 1] - 0.3) ** 2) / 0.1)
    return geom, sigma, mean


class TestMarginalExceedance:
    def test_matches_normal_sf(self, rng):
        mean = rng.normal(size=10)
        var = rng.uniform(0.5, 2.0, 10)
        probs = marginal_exceedance(mean, var, threshold=0.7)
        np.testing.assert_allclose(probs, norm.sf((0.7 - mean) / np.sqrt(var)), atol=1e-12)

    def test_monotone_in_threshold(self, rng):
        mean, var = np.zeros(5), np.ones(5)
        low = marginal_exceedance(mean, var, 0.0)
        high = marginal_exceedance(mean, var, 1.0)
        assert np.all(high < low)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            marginal_exceedance(np.zeros(3), np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            marginal_exceedance(np.zeros(3), np.ones(2), 0.0)


class TestConfidenceRegion:
    def test_prefix_probabilities_match_scipy(self, small_field):
        """Every prefix joint probability must match the exact MVN value."""
        geom, sigma, mean = small_field
        u = 0.5
        res = confidence_region(sigma, mean, u, method="dense", n_samples=6000, tile_size=10, rng=1)
        prefix = res.details["prefix_probabilities"]
        order = res.order
        std = np.sqrt(np.diag(sigma))
        for i in (1, 2, 4, 8, geom.n):
            idx = order[:i]
            ref = multivariate_normal(mean=-mean[idx], cov=sigma[np.ix_(idx, idx)], allow_singular=True).cdf(
                np.full(i, -u)
            )
            assert prefix[i - 1] == pytest.approx(ref, abs=6e-3)
        assert std.shape == (geom.n,)

    def test_confidence_function_between_zero_and_one(self, small_field):
        geom, sigma, mean = small_field
        res = confidence_region(sigma, mean, 0.4, n_samples=2000, tile_size=10, rng=0)
        assert np.all(res.confidence_function >= 0.0)
        assert np.all(res.confidence_function <= 1.0 + 1e-12)

    def test_confidence_function_bounded_by_marginals(self, small_field):
        """F+(s) <= P(X(s) > u): joining more locations cannot raise the joint probability."""
        geom, sigma, mean = small_field
        res = confidence_region(sigma, mean, 0.4, n_samples=4000, tile_size=10, rng=0)
        assert np.all(res.confidence_function <= res.marginal_probabilities + 5e-3)

    def test_excursion_sets_nested_in_alpha(self, small_field):
        geom, sigma, mean = small_field
        res = confidence_region(sigma, mean, 0.4, n_samples=2000, tile_size=10, rng=0)
        strict = res.excursion_set(alpha=0.05)
        loose = res.excursion_set(alpha=0.5)
        assert np.all(loose[strict])  # strict region contained in loose region
        assert res.region_size(0.5) >= res.region_size(0.05)

    def test_excursion_indices_match_mask(self, small_field):
        geom, sigma, mean = small_field
        res = confidence_region(sigma, mean, 0.4, n_samples=1000, tile_size=10, rng=0)
        idx = res.excursion_indices(0.3)
        mask = res.excursion_set(0.3)
        assert set(idx.tolist()) == set(np.flatnonzero(mask).tolist())

    def test_higher_threshold_smaller_region(self, small_field):
        geom, sigma, mean = small_field
        low = confidence_region(sigma, mean, 0.2, n_samples=2000, tile_size=10, rng=3)
        high = confidence_region(sigma, mean, 1.2, n_samples=2000, tile_size=10, rng=3)
        assert high.region_size(0.3) <= low.region_size(0.3)

    def test_sequential_matches_prefix(self, small_field):
        """The paper-faithful per-prefix loop agrees with the single-sweep estimator."""
        geom, sigma, mean = small_field
        u = 0.4
        prefix = confidence_region(sigma, mean, u, algorithm="prefix", n_samples=6000, tile_size=10, rng=2)
        seq = confidence_region(sigma, mean, u, algorithm="sequential", n_samples=6000, tile_size=10, rng=2)
        np.testing.assert_allclose(
            seq.confidence_function, prefix.confidence_function, atol=8e-3
        )

    def test_sequential_with_coarse_levels(self, small_field):
        geom, sigma, mean = small_field
        res = confidence_region(
            sigma, mean, 0.4, algorithm="sequential", n_samples=1000, tile_size=10, rng=2,
            levels=np.array([1, 5, 10, 20]),
        )
        assert res.confidence_function.shape == (geom.n,)

    def test_tlr_method_close_to_dense(self, small_field):
        geom, sigma, mean = small_field
        dense = confidence_region(sigma, mean, 0.4, method="dense", n_samples=4000, tile_size=10, rng=4)
        tlr = confidence_region(sigma, mean, 0.4, method="tlr", accuracy=1e-4, n_samples=4000, tile_size=10, rng=4)
        assert np.max(np.abs(dense.confidence_function - tlr.confidence_function)) < 5e-3

    def test_unknown_algorithm(self, small_field):
        geom, sigma, mean = small_field
        with pytest.raises(ValueError):
            confidence_region(sigma, mean, 0.4, algorithm="bisection")

    def test_scalar_mean_accepted(self, small_field):
        geom, sigma, _ = small_field
        res = confidence_region(sigma, 0.0, 0.5, n_samples=500, tile_size=10, rng=0)
        assert res.n == geom.n

    def test_order_is_by_marginal_probability(self, small_field):
        geom, sigma, mean = small_field
        res = confidence_region(sigma, mean, 0.4, n_samples=500, tile_size=10, rng=0)
        ordered = res.marginal_probabilities[res.order]
        assert np.all(np.diff(ordered) <= 1e-12)

    def test_details_contain_diagnostics(self, small_field):
        geom, sigma, mean = small_field
        res = confidence_region(sigma, mean, 0.4, method="tlr", n_samples=500, tile_size=10, rng=0)
        assert res.details["algorithm"] == "prefix"
        assert res.details["tlr_accuracy"] == 1e-3
        assert "timings" in res.details

    def test_from_posterior_wrapper(self, rng):
        geom = Geometry.regular_grid(4, 4)
        kern = ExponentialKernel(1.0, 0.3)
        sigma = build_covariance(kern, geom.locations, nugget=1e-8)
        observed = np.arange(0, 16, 2)
        y = rng.standard_normal(observed.size) + 1.0
        post = posterior_from_observations(sigma, observed, y, noise_std=0.5)
        res = confidence_region_from_posterior(post, threshold=0.5, n_samples=500, tile_size=8, rng=0)
        assert res.n == 16
