"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_covariance,
    check_limits,
    check_positive_int,
    check_probability,
    check_square,
    check_symmetric,
    ensure_1d,
    ensure_2d,
)


class TestEnsure:
    def test_ensure_1d_from_list(self):
        out = ensure_1d([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_ensure_1d_rejects_matrix(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ensure_1d(np.zeros((2, 2)))

    def test_ensure_2d_from_nested_list(self):
        out = ensure_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.flags["C_CONTIGUOUS"]

    def test_ensure_2d_rejects_vector(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            ensure_2d(np.zeros(3))

    def test_ensure_2d_custom_name_in_error(self):
        with pytest.raises(ValueError, match="mymatrix"):
            ensure_2d(np.zeros(3), name="mymatrix")


class TestSquareSymmetric:
    def test_check_square_accepts_square(self):
        assert check_square(np.eye(3)).shape == (3, 3)

    def test_check_square_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square(np.zeros((2, 3)))

    def test_check_symmetric_accepts_symmetric(self):
        a = np.array([[2.0, 0.5], [0.5, 1.0]])
        assert check_symmetric(a) is not None

    def test_check_symmetric_rejects_asymmetric(self):
        a = np.array([[1.0, 0.9], [0.1, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(a)

    def test_check_symmetric_tolerates_roundoff(self):
        a = np.array([[1.0, 0.5 + 1e-12], [0.5, 1.0]])
        check_symmetric(a)


class TestCovariance:
    def test_valid_covariance(self, small_spd):
        out = check_covariance(small_spd)
        assert out.shape == small_spd.shape

    def test_rejects_negative_diagonal(self):
        a = np.eye(3)
        a[1, 1] = -1.0
        with pytest.raises(ValueError, match="diagonal"):
            check_covariance(a)

    def test_rejects_nan(self):
        a = np.eye(3)
        a[0, 1] = a[1, 0] = np.nan
        with pytest.raises(ValueError):
            check_covariance(a)

    def test_require_spd_rejects_indefinite(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # symmetric but indefinite
        with pytest.raises(ValueError, match="positive definite"):
            check_covariance(a, require_spd=True)

    def test_require_spd_accepts_spd(self, small_spd):
        check_covariance(small_spd, require_spd=True)


class TestLimits:
    def test_valid_limits(self):
        a, b = check_limits([-1, -np.inf], [1, 0])
        assert a.shape == b.shape == (2,)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            check_limits([0.0], [1.0, 2.0])

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError, match="length 3"):
            check_limits([0.0, 0.0], [1.0, 1.0], n=3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_limits([np.nan], [1.0])

    def test_rejects_crossed_limits(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_limits([2.0], [1.0])

    def test_infinite_limits_allowed(self):
        a, b = check_limits([-np.inf, -np.inf], [np.inf, 0.0])
        assert np.isinf(a).all()


class TestScalars:
    def test_positive_int_ok(self):
        assert check_positive_int(5) == 5

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0)

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True)

    def test_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)
