"""Direct unit tests for repro.excursion.maps and repro.excursion.validation.

The integration suite exercises these helpers only through the Figure-1
pipeline; here each public function is pinned down in isolation — grid
vs irregular reshaping, overlap statistics on hand-built masks, the MC
validation estimator's conventions (strict level bounds, empty-region
handling, seeded reproducibility) and the dense-vs-TLR comparison keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.crd import ConfidenceRegionResult, confidence_region, marginal_exceedance
from repro.excursion import (
    MCValidationResult,
    compare_confidence_functions,
    excursion_map,
    excursion_map_sweep,
    marginal_probability_map,
    mc_validate_regions,
    region_overlap,
)
from repro.kernels import Geometry


def _grid_field(side: int) -> tuple[Geometry, np.ndarray, np.ndarray]:
    geom = Geometry.regular_grid(side)
    pts = geom.locations
    dist = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=-1)
    sigma = np.exp(-dist / 0.4) + 1e-6 * np.eye(geom.n)
    mean = np.linspace(-0.8, 0.8, geom.n)
    return geom, sigma, mean


def _synthetic_result(confidence) -> ConfidenceRegionResult:
    confidence = np.asarray(confidence, dtype=np.float64)
    n = confidence.shape[0]
    return ConfidenceRegionResult(
        confidence_function=confidence,
        marginal_probabilities=np.linspace(0.1, 0.9, n),
        order=np.arange(n),
        threshold=0.0,
    )


class TestMarginalProbabilityMap:
    def test_grid_reshapes_to_image(self):
        geom = Geometry.regular_grid(3)
        mean = np.linspace(-1.0, 1.0, 9)
        variance = np.full(9, 0.5)
        image = marginal_probability_map(geom, mean, variance, threshold=0.0)
        assert image.shape == (3, 3)
        expected = marginal_exceedance(mean, variance, 0.0)
        assert np.array_equal(image.ravel(), geom.as_image(expected).ravel())
        # exceedance probability grows with the mean
        assert np.all(np.diff(image.ravel()) > 0)

    def test_irregular_returns_flat_vector(self):
        geom = Geometry.irregular(5, rng=0)
        probs = marginal_probability_map(geom, np.zeros(5), np.ones(5), 0.0)
        assert probs.shape == (5,)
        assert np.allclose(probs, 0.5)


class TestExcursionMap:
    def test_binary_map_matches_excursion_set(self):
        geom = Geometry.regular_grid(2)
        result = _synthetic_result([0.99, 0.7, 0.96, 0.1])
        image = excursion_map(geom, result, alpha=0.05)
        assert image.shape == (2, 2)
        assert set(np.unique(image)) <= {0.0, 1.0}
        assert np.array_equal(image.ravel() > 0.5,
                              geom.as_image(result.excursion_set(0.05).astype(float)).ravel() > 0.5)

    def test_irregular_returns_flat_indicator(self):
        geom = Geometry.irregular(4, rng=1)
        mask = excursion_map(geom, _synthetic_result([0.99, 0.1, 0.97, 0.2]), 0.05)
        assert mask.shape == (4,)
        assert np.array_equal(mask, [1.0, 0.0, 1.0, 0.0])

    def test_alpha_validated(self):
        geom = Geometry.regular_grid(2)
        with pytest.raises(ValueError):
            excursion_map(geom, _synthetic_result(np.zeros(4)), alpha=1.5)


class TestRegionOverlap:
    def test_identical_masks(self):
        mask = np.array([1.0, 0.0, 1.0, 1.0])
        stats = region_overlap(mask, mask)
        assert stats["jaccard"] == 1.0
        assert stats["sym_diff_fraction"] == 0.0
        assert stats["size_a"] == stats["size_b"] == 3

    def test_disjoint_masks(self):
        stats = region_overlap([1.0, 0.0, 0.0], [0.0, 1.0, 1.0])
        assert stats["jaccard"] == 0.0
        assert stats["sym_diff_fraction"] == 1.0

    def test_empty_masks_agree_trivially(self):
        stats = region_overlap(np.zeros(4), np.zeros(4))
        assert stats["jaccard"] == 1.0  # empty union: perfect agreement
        assert stats["size_a"] == 0 and stats["size_b"] == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same number of locations"):
            region_overlap(np.zeros(3), np.zeros(4))


class TestExcursionMapSweep:
    def test_sweep_stacks_classification_maps(self):
        geom, sigma, mean = _grid_field(4)
        out = excursion_map_sweep(geom, sigma, mean, [0.0, 0.5],
                                  n_samples=100, rng=0)
        assert np.array_equal(out["thresholds"], [0.0, 0.5])
        assert out["maps"].shape == (2, 4, 4)
        assert len(out["analyses"]) == 2
        assert set(np.unique(out["maps"])) <= {-1.0, 0.0, 1.0}
        for layer, analysis in zip(out["maps"], out["analyses"]):
            assert np.array_equal(layer.ravel(),
                                  geom.as_image(analysis.classification().astype(float)).ravel())


class TestMCValidateRegions:
    def test_default_levels_and_details(self):
        _, sigma, mean = _grid_field(3)
        result = confidence_region(sigma, mean, 0.0, n_samples=100, rng=0)
        validation = mc_validate_regions(result, sigma, mean,
                                         n_samples=300, rng=0, batch_size=128)
        assert validation.levels.shape == (19,)
        assert validation.estimated.shape == (19,)
        assert np.all((validation.estimated >= 0.0) & (validation.estimated <= 1.0))
        assert np.array_equal(validation.differences,
                              validation.levels - validation.estimated)
        assert validation.n_samples == 300
        assert validation.details["threshold"] == 0.0
        assert "empty_levels" in validation.details

    def test_levels_must_be_strictly_inside_unit_interval(self):
        _, sigma, mean = _grid_field(3)
        result = confidence_region(sigma, mean, 0.0, n_samples=100, rng=0)
        for bad in ([0.0], [1.0], [0.5, 1.2]):
            with pytest.raises(ValueError, match="strictly between"):
                mc_validate_regions(result, sigma, mean, n_samples=50, levels=bad)

    def test_empty_region_counts_as_satisfied(self):
        n = 9
        sigma = np.eye(n)
        result = _synthetic_result(np.zeros(n))  # no location ever in the region
        validation = mc_validate_regions(result, sigma, np.zeros(n),
                                         n_samples=50, levels=[0.5], rng=0)
        assert validation.estimated[0] == 1.0
        assert validation.differences[0] == pytest.approx(-0.5)
        assert validation.details["empty_levels"] == 1

    def test_seeded_runs_reproduce(self):
        _, sigma, mean = _grid_field(3)
        result = confidence_region(sigma, mean, 0.0, n_samples=100, rng=0)
        a = mc_validate_regions(result, sigma, mean, n_samples=200, rng=42)
        b = mc_validate_regions(result, sigma, mean, n_samples=200, rng=42)
        assert np.array_equal(a.estimated, b.estimated)

    def test_max_abs_difference_ignores_non_finite(self):
        validation = MCValidationResult(
            levels=np.array([0.5, 0.9]),
            estimated=np.array([0.4, np.nan]),
            differences=np.array([0.1, np.nan]),
            n_samples=10,
        )
        assert validation.max_abs_difference == pytest.approx(0.1)
        empty = MCValidationResult(levels=np.array([]), estimated=np.array([]),
                                   differences=np.array([]), n_samples=1)
        assert empty.max_abs_difference == 0.0


class TestCompareConfidenceFunctions:
    def test_identical_results_have_zero_differences(self):
        result = _synthetic_result(np.linspace(0.0, 1.0, 6))
        out = compare_confidence_functions(result, result)
        assert out["levels"].shape == (19,)
        assert np.array_equal(out["region_size_difference"], np.zeros(19))
        assert out["max_pointwise_difference"] == 0.0
        assert out["mean_pointwise_difference"] == 0.0

    def test_size_and_pointwise_differences(self):
        reference = _synthetic_result([0.9, 0.9, 0.1, 0.1])
        other = _synthetic_result([0.9, 0.1, 0.1, 0.1])
        out = compare_confidence_functions(reference, other, levels=[0.5])
        assert out["region_size_difference"][0] == pytest.approx(0.25)
        assert out["max_pointwise_difference"] == pytest.approx(0.8)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same locations"):
            compare_confidence_functions(_synthetic_result(np.zeros(4)),
                                         _synthetic_result(np.zeros(5)))
