"""Unit tests for repro.stats: normal functions, QMC sequences, MLE, posterior."""

import numpy as np
import pytest
from scipy.stats import norm as scipy_norm

from repro.kernels import ExponentialKernel, Geometry, MaternKernel, build_covariance
from repro.fields import sample_gaussian_field
from repro.stats import (
    HaltonSequence,
    RichtmyerLattice,
    SobolSequence,
    UniformRandom,
    fit_kernel,
    indicator_matrix,
    negative_log_likelihood,
    norm_cdf,
    norm_cdf_interval,
    norm_pdf,
    norm_ppf,
    posterior_from_observations,
    qmc_samples,
    sequence_from_name,
    truncnorm_sample,
)
from repro.stats.qmc import first_primes


class TestNormal:
    def test_cdf_matches_scipy(self, rng):
        x = rng.normal(0, 3, 200)
        np.testing.assert_allclose(norm_cdf(x), scipy_norm.cdf(x), atol=1e-12)

    def test_pdf_matches_scipy(self, rng):
        x = rng.normal(0, 2, 100)
        np.testing.assert_allclose(norm_pdf(x), scipy_norm.pdf(x), atol=1e-12)

    def test_ppf_inverts_cdf(self, rng):
        x = rng.normal(0, 1, 100)
        np.testing.assert_allclose(norm_ppf(norm_cdf(x)), x, atol=1e-9)

    def test_cdf_handles_infinities(self):
        assert norm_cdf(np.array([-np.inf, np.inf])).tolist() == [0.0, 1.0]

    def test_ppf_is_finite_at_extremes(self):
        vals = norm_ppf(np.array([0.0, 1.0]))
        assert np.all(np.isfinite(vals))
        assert vals[0] < -7 and vals[1] > 7

    def test_interval_nonnegative(self):
        a = np.array([0.0, 5.0])
        b = np.array([1.0, 5.0])
        widths = norm_cdf_interval(a, b)
        assert np.all(widths >= 0.0)

    def test_truncnorm_sample_within_bounds(self, rng):
        a, b = -0.5, 1.2
        u = rng.random(1000)
        x = truncnorm_sample(np.full(1000, a), np.full(1000, b), u)
        assert np.all(x >= a - 1e-9) and np.all(x <= b + 1e-9)

    def test_truncnorm_rejects_bad_uniforms(self):
        with pytest.raises(ValueError):
            truncnorm_sample(np.zeros(2), np.ones(2), np.array([0.5, 1.5]))


class TestQMC:
    def test_first_primes(self):
        np.testing.assert_array_equal(first_primes(6), [2, 3, 5, 7, 11, 13])

    @pytest.mark.parametrize("cls", [UniformRandom, RichtmyerLattice, HaltonSequence, SobolSequence])
    def test_points_in_open_unit_cube(self, cls):
        pts = cls(5, rng=0).points(100)
        assert pts.shape == (100, 5)
        assert np.all(pts > 0.0) and np.all(pts < 1.0)

    @pytest.mark.parametrize("name", ["random", "richtmyer", "halton", "sobol"])
    def test_mean_near_half(self, name):
        pts = sequence_from_name(name, 3, rng=1).points(2048)
        np.testing.assert_allclose(pts.mean(axis=0), 0.5, atol=0.05)

    def test_lowdiscrepancy_beats_random_on_uniformity(self):
        """QMC star-discrepancy proxy: 1-D projections closer to uniform."""
        n = 1024
        random_pts = UniformRandom(1, rng=0).points(n)[:, 0]
        qmc_pts = RichtmyerLattice(1, rng=0).points(n)[:, 0]

        def max_gap(x):
            return np.max(np.diff(np.sort(np.concatenate([[0.0], x, [1.0]]))))

        assert max_gap(qmc_pts) < max_gap(random_pts)

    def test_richtmyer_shift_randomizes(self):
        a = RichtmyerLattice(2, rng=0).points(10)
        b = RichtmyerLattice(2, rng=1).points(10)
        assert not np.allclose(a, b)

    def test_halton_deterministic_without_shift(self):
        a = HaltonSequence(3, rng=0, shift=False).points(20)
        b = HaltonSequence(3, rng=99, shift=False).points(20)
        np.testing.assert_allclose(a, b)

    def test_qmc_samples_orientation(self):
        mat = qmc_samples(7, 50, method="halton", rng=0)
        assert mat.shape == (7, 50)

    def test_unknown_sequence(self):
        with pytest.raises(ValueError):
            sequence_from_name("notaseq", 2)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            RichtmyerLattice(0)
        with pytest.raises(ValueError):
            UniformRandom(2).points(0)


class TestMLE:
    def test_nll_finite_for_valid_kernel(self, grid_geometry, rng):
        kern = ExponentialKernel(1.0, 0.2)
        values = sample_gaussian_field(kern, grid_geometry.locations, rng=rng)[:, 0]
        nll = negative_log_likelihood(kern, grid_geometry.locations, values)
        assert np.isfinite(nll)

    def test_nll_prefers_true_range_over_wrong_range(self):
        geom = Geometry.regular_grid(9, 9)
        true = ExponentialKernel(1.0, 0.2)
        values = sample_gaussian_field(true, geom.locations, rng=3)[:, 0]
        nll_true = negative_log_likelihood(true, geom.locations, values)
        nll_wrong = negative_log_likelihood(ExponentialKernel(1.0, 0.9), geom.locations, values)
        assert nll_true < nll_wrong

    def test_fit_exponential_recovers_range_order_of_magnitude(self):
        geom = Geometry.regular_grid(10, 10)
        true = ExponentialKernel(1.0, 0.15)
        values = sample_gaussian_field(true, geom.locations, rng=7)[:, 0]
        result = fit_kernel(geom.locations, values, family="exponential", max_iterations=60)
        assert 0.03 < result.theta[1] < 0.6
        assert result.n_evaluations > 0

    def test_fit_matern_with_fixed_smoothness(self):
        geom = Geometry.regular_grid(8, 8)
        true = MaternKernel(1.0, 0.2, 1.0)
        values = sample_gaussian_field(true, geom.locations, rng=11)[:, 0]
        result = fit_kernel(
            geom.locations, values, family="matern", fixed_smoothness=1.0, max_iterations=40
        )
        assert len(result.theta) == 3
        assert result.theta[2] == pytest.approx(1.0)

    def test_fit_rejects_unknown_family(self, grid_geometry, rng):
        with pytest.raises(ValueError):
            fit_kernel(grid_geometry.locations, rng.normal(size=grid_geometry.n), family="cosine")

    def test_nll_length_mismatch(self, grid_geometry):
        with pytest.raises(ValueError):
            negative_log_likelihood(ExponentialKernel(), grid_geometry.locations, np.zeros(3))


class TestPosterior:
    def _setup(self, rng, n_side=6):
        geom = Geometry.regular_grid(n_side, n_side)
        kern = ExponentialKernel(1.0, 0.25)
        sigma = build_covariance(kern, geom.locations, nugget=1e-8)
        latent = sample_gaussian_field(kern, geom.locations, rng=rng)[:, 0]
        observed = np.arange(0, geom.n, 3)
        y = latent[observed] + 0.5 * rng.standard_normal(observed.size)
        return sigma, observed, y, latent

    def test_indicator_matrix(self):
        A = indicator_matrix([1, 3], 5)
        assert A.shape == (2, 5)
        assert A[0, 1] == 1.0 and A[1, 3] == 1.0 and A.sum() == 2.0

    def test_indicator_out_of_range(self):
        with pytest.raises(ValueError):
            indicator_matrix([7], 5)

    def test_posterior_matches_explicit_formula(self, rng):
        """Posterior must equal (Sigma^-1 + A^T A / tau^2)^-1 computed directly."""
        sigma, observed, y, _ = self._setup(rng)
        post = posterior_from_observations(sigma, observed, y, noise_std=0.5)
        n = sigma.shape[0]
        A = indicator_matrix(observed, n)
        expected_cov = np.linalg.inv(np.linalg.inv(sigma) + (1 / 0.25) * A.T @ A)
        np.testing.assert_allclose(post.covariance, expected_cov, atol=1e-6)
        expected_mean = (1 / 0.25) * expected_cov @ A.T @ y
        np.testing.assert_allclose(post.mean, expected_mean, atol=1e-6)

    def test_posterior_covariance_is_spd_and_smaller(self, rng):
        sigma, observed, y, _ = self._setup(rng)
        post = posterior_from_observations(sigma, observed, y, noise_std=0.5)
        eigvals = np.linalg.eigvalsh(post.covariance)
        assert eigvals.min() > 0
        # conditioning on data cannot increase marginal variances
        assert np.all(np.diag(post.covariance) <= np.diag(sigma) + 1e-10)

    def test_posterior_mean_tracks_observations_at_low_noise(self, rng):
        sigma, observed, y, _ = self._setup(rng)
        post = posterior_from_observations(sigma, observed, y, noise_std=0.01)
        np.testing.assert_allclose(post.mean[observed], y, atol=0.05)

    def test_posterior_input_validation(self, rng):
        sigma, observed, y, _ = self._setup(rng)
        with pytest.raises(ValueError):
            posterior_from_observations(sigma, observed, y[:-1])
        with pytest.raises(ValueError):
            posterior_from_observations(sigma, observed, y, noise_std=0.0)
        with pytest.raises(ValueError):
            posterior_from_observations(sigma, np.array([0, 0]), y[:2])


class TestPosteriorUpdatePath:
    """Direct coverage of the seed-era posterior *update* path.

    ``posterior_from_observations`` is the precision-form Gaussian update
    (equations 7-8 of the paper); until now it was only exercised through the
    Figure-1 integration pipeline.  These tests pin down the pieces that
    pipeline never isolates: the non-zero prior-mean branch, sequential
    (one-observation-at-a-time) consistency, and the identity tying the
    posterior covariance to a chain of rank-1 Cholesky downdates — the bridge
    the online-update machinery (:meth:`repro.solver.Model.update`) relies on.
    """

    def _setup(self, rng, n_side=5):
        geom = Geometry.regular_grid(n_side, n_side)
        kern = ExponentialKernel(1.0, 0.25)
        sigma = build_covariance(kern, geom.locations, nugget=1e-8)
        latent = sample_gaussian_field(kern, geom.locations, rng=rng)[:, 0]
        observed = np.array([2, 7, 11, 18])
        y = latent[observed] + 0.5 * rng.standard_normal(observed.size)
        return sigma, observed, y

    def test_scalar_prior_mean_shifts_posterior(self, rng):
        """mu_post = mu + tau^-2 Sigma_post A^T (y - A mu) with mu != 0."""
        sigma, observed, y = self._setup(rng)
        n = sigma.shape[0]
        shifted = posterior_from_observations(sigma, observed, y, noise_std=0.5,
                                              prior_mean=1.7)
        A = indicator_matrix(observed, n)
        expected_cov = np.linalg.inv(np.linalg.inv(sigma) + (1 / 0.25) * A.T @ A)
        mu = np.full(n, 1.7)
        expected_mean = mu + (1 / 0.25) * expected_cov @ A.T @ (y - A @ mu)
        np.testing.assert_allclose(shifted.mean, expected_mean, atol=1e-8)
        # the covariance update never depends on the prior mean
        base = posterior_from_observations(sigma, observed, y, noise_std=0.5)
        np.testing.assert_allclose(shifted.covariance, base.covariance, atol=1e-12)

    def test_vector_prior_mean_matches_scalar_broadcast(self, rng):
        sigma, observed, y = self._setup(rng)
        n = sigma.shape[0]
        scalar = posterior_from_observations(sigma, observed, y, prior_mean=0.4)
        vector = posterior_from_observations(sigma, observed, y,
                                             prior_mean=np.full(n, 0.4))
        np.testing.assert_array_equal(scalar.mean, vector.mean)
        with pytest.raises(ValueError):
            posterior_from_observations(sigma, observed, y,
                                        prior_mean=np.zeros(n - 1))

    def test_sequential_assimilation_matches_joint_update(self, rng):
        """Conditioning one observation at a time equals the joint update.

        Independent observation noise makes the Gaussian update associative:
        feeding the step-k posterior (mean *and* covariance) back in as the
        prior for observation k+1 must land on the same posterior as the
        single joint call.  This is the property the streaming serve path
        leans on and it was never asserted directly.
        """
        sigma, observed, y = self._setup(rng)
        joint = posterior_from_observations(sigma, observed, y, noise_std=0.5)

        mean_seq = np.zeros(sigma.shape[0])
        cov_seq = sigma
        for idx, obs in zip(observed, y):
            step = posterior_from_observations(cov_seq, np.array([idx]),
                                               np.array([obs]), noise_std=0.5,
                                               prior_mean=mean_seq)
            mean_seq, cov_seq = step.mean, step.covariance
        np.testing.assert_allclose(cov_seq, joint.covariance, atol=1e-8)
        np.testing.assert_allclose(mean_seq, joint.mean, atol=1e-8)

    def test_posterior_covariance_is_a_rank_one_downdate_chain(self, rng):
        """Sigma_post == Sigma - sum_k u_k u_k^T with the Kalman gain columns.

        The exact identity that lets :meth:`repro.solver.Model.update` serve
        posterior covariances without refactorizing: each single-location
        observation is a rank-1 *downdate* by
        ``u = Sigma[:, i] / sqrt(Sigma[i, i] + tau^2)``.
        """
        from repro.solver import MVNSolver, SolverConfig

        sigma, observed, y = self._setup(rng)
        joint = posterior_from_observations(sigma, observed, y, noise_std=0.5)

        cov = sigma.copy()
        us = []
        for idx in observed:
            u = cov[:, idx] / np.sqrt(cov[idx, idx] + 0.25)
            us.append(u)
            cov = cov - np.outer(u, u)
        np.testing.assert_allclose(cov, joint.covariance, atol=1e-8)

        # and the factor-level downdate chain agrees with a from-scratch
        # factorization of the posterior covariance
        config = SolverConfig(method="dense", n_samples=400, tile_size=8)
        a = np.full(sigma.shape[0], -np.inf)
        b = joint.mean + 0.5
        with MVNSolver(config) as solver:
            model = solver.model(sigma)
            for u in us:
                model = model.update(u, downdate=True)
            chained = model.probability(a - joint.mean, b - joint.mean, rng=3)
            fresh = solver.model(joint.covariance).probability(
                a - joint.mean, b - joint.mean, rng=3)
        assert abs(chained.probability - fresh.probability) <= 1e-9

    def test_indicator_matrix_rejects_2d_indices(self):
        with pytest.raises(ValueError):
            indicator_matrix(np.array([[0, 1]]), 4)

    def test_empty_observed_indices_rejected(self, rng):
        sigma, _, _ = self._setup(rng)
        with pytest.raises(ValueError):
            posterior_from_observations(sigma, np.array([], dtype=int),
                                        np.array([]))
