"""Tests for the parallel-kernel round: fallback chains, thread-count
control, and fused-batch vs interleaved-batch bit-parity.

Three contracts from the raw-speed PR:

* **fallback chains** — ``numba-parallel`` degrades to ``numba`` to
  ``numpy`` with a one-time warning when numba is absent; ``cupy`` is never
  picked silently (absent means absent from :func:`available_backends`,
  ``"auto"`` never selects it, and an *explicit* request raises);
* **thread control** — ``SolverConfig.kernel_threads`` /
  ``set_kernel_threads`` / ``$REPRO_KERNEL_THREADS`` resolve in that order
  and reject nonsense early;
* **fusion parity** — the fused (boxes x samples) batch schedule is a speed
  knob, never a numerics knob: bitwise identical to the interleaved
  schedule across seeds, methods and limit kinds whenever it engages, and
  the ``"auto"`` predicate only engages it on lane-aligned workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import mvn_probability_batch
from repro.core import factorize
from repro.core.kernel_backend import (
    BACKEND_ENV_VAR,
    KERNEL_THREADS_ENV_VAR,
    KernelBackend,
    _numba_kernel_py,
    _numba_parallel_kernel_py,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    resolve_kernel_threads,
    set_kernel_threads,
)
from repro.core.pmvn import (
    BATCH_FUSION_MODES,
    PMVNOptions,
    pmvn_integrate_batch,
)
from repro.solver import SolverConfig
from repro.stats.qmc import qmc_samples

numba_missing = "numba" not in available_backends()
cupy_missing = "cupy" not in available_backends()


@pytest.fixture
def spd36(rng):
    from repro.kernels import ExponentialKernel, Geometry, build_covariance

    geom = Geometry.regular_grid(6, 6)
    return build_covariance(ExponentialKernel(1.0, 0.25), geom.locations, nugget=1e-8)


def _boxes(n, rng, kinds=("one-sided", "two-sided", "mixed")):
    out = []
    for kind in kinds:
        if kind == "one-sided":
            out.append((np.full(n, -np.inf), rng.uniform(0.5, 2.0, n)))
        elif kind == "two-sided":
            out.append((-rng.uniform(1.0, 3.0, n), rng.uniform(0.5, 2.0, n)))
        else:
            out.append((
                np.where(np.arange(n) % 3 == 0, -np.inf, -1.5),
                np.where(np.arange(n) % 5 == 0, np.inf, 1.2),
            ))
    return out


class TestFallbackChains:
    @pytest.mark.skipif(not numba_missing, reason="numba is installed here")
    def test_numba_parallel_falls_back_to_numpy(self):
        import repro.core.kernel_backend as kb

        kb._FALLBACK_WARNED = False
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("numba-parallel")
        assert backend.name == "numpy"
        # the warning is one-time: a second request stays silent
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert get_backend("numba-parallel").name == "numpy"

    @pytest.mark.skipif(not numba_missing, reason="numba is installed here")
    def test_auto_prefers_cpu_chain_never_cupy(self):
        assert get_backend("auto").name == "numpy"

    @pytest.mark.skipif(not numba_missing, reason="numba is installed here")
    def test_config_accepts_parallel_name_without_numba(self):
        # validation must not require numba: the fallback happens at dispatch
        assert SolverConfig(backend="numba-parallel").backend == "numba-parallel"

    @pytest.mark.skipif(not cupy_missing, reason="cupy is installed here")
    def test_cupy_absent_is_absent(self):
        assert "cupy" not in available_backends()
        with pytest.raises(ValueError, match="not available"):
            resolve_backend_name("cupy")
        with pytest.raises(ValueError, match="available"):
            get_backend("cupy")
        # a GPU request must never silently run on one CPU core
        with pytest.raises(ValueError):
            SolverConfig(backend="cupy")

    def test_unknown_env_backend_names_the_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "tpu")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            resolve_backend_name(None)

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available on this install"):
            resolve_backend_name("vulkan")

    @pytest.mark.skipif(not numba_missing, reason="numba is installed here")
    def test_require_available_rejects_missing_numba(self):
        with pytest.raises(ValueError, match="not available"):
            resolve_backend_name("numba-parallel", require_available=True)


class TestParallelKernelBody:
    def test_parallel_recursion_bit_identical_to_serial(self, small_spd):
        """The prange body is the serial numba body, chain by chain.

        Runs the exact functions numba compiles (pure-Python here, with
        ``prange = range``), so the staged prefix reduction and the per-chain
        arithmetic are covered even on installs without numba.
        """
        n = small_spd.shape[0]
        c = 96
        l_tile = np.linalg.cholesky(small_spd)
        inv_diag = 1.0 / np.diag(l_tile)
        r_tile = qmc_samples(n, c, rng=5)
        a_tile = np.full((n, c), -np.inf)
        a_tile[::2] = -1.4
        b_tile = np.full((n, c), 1.1)
        b_tile[1::4] = np.inf
        for do_prefix in (False, True):
            p_s, p_p = np.ones(c), np.ones(c)
            y_s, y_p = np.zeros((n, c)), np.zeros((n, c))
            ps_s, ps_p = np.zeros(n), np.zeros(n)
            qq_s, qq_p = np.zeros(n), np.zeros(n)
            _numba_kernel_py(l_tile, r_tile, a_tile.copy(), b_tile.copy(),
                             p_s, y_s, inv_diag, ps_s, qq_s, do_prefix)
            _numba_parallel_kernel_py(l_tile, r_tile, a_tile.copy(), b_tile.copy(),
                                      p_p, y_p, inv_diag, ps_p, qq_p, do_prefix)
            np.testing.assert_array_equal(p_p, p_s)
            np.testing.assert_array_equal(y_p, y_s)
            np.testing.assert_array_equal(ps_p, ps_s)
            np.testing.assert_array_equal(qq_p, qq_s)

    @pytest.mark.skipif(numba_missing, reason="numba not installed")
    def test_compiled_parallel_bit_identical_to_serial(self, spd36, rng):
        from repro.core import pmvn_dense

        n = spd36.shape[0]
        a, b = np.full(n, -np.inf), rng.uniform(0.5, 2.0, n)
        serial = pmvn_dense(a, b, spd36, n_samples=600, tile_size=7, rng=3,
                            backend="numba")
        for threads in (1, 2):
            par = pmvn_dense(a, b, spd36, n_samples=600, tile_size=7, rng=3,
                             backend="numba-parallel", kernel_threads=threads)
            assert par.details["backend"] == "numba-parallel"
            assert par.probability == serial.probability
            assert par.error == serial.error


class TestThreadControl:
    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV_VAR, raising=False)
        assert resolve_kernel_threads() is None
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "3")
        assert resolve_kernel_threads() == 3
        prev = set_kernel_threads(2)
        try:
            assert resolve_kernel_threads() == 2          # setting beats env
            assert resolve_kernel_threads(5) == 5         # explicit beats both
        finally:
            set_kernel_threads(prev)
        assert resolve_kernel_threads() == 3

    def test_set_returns_previous(self):
        prev = set_kernel_threads(4)
        try:
            assert set_kernel_threads(None) == 4
        finally:
            set_kernel_threads(prev)

    def test_invalid_threads_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="kernel_threads"):
            set_kernel_threads(0)
        with pytest.raises(ValueError):
            resolve_kernel_threads(-1)
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=KERNEL_THREADS_ENV_VAR):
            resolve_kernel_threads()

    def test_config_validates_threads_and_fusion(self):
        assert SolverConfig(kernel_threads=2).kernel_threads == 2
        assert SolverConfig(batch_fusion="Fused").batch_fusion == "fused"
        with pytest.raises(ValueError, match="kernel_threads"):
            SolverConfig(kernel_threads=0)
        with pytest.raises(ValueError, match="batch_fusion"):
            SolverConfig(batch_fusion="maybe")
        assert SolverConfig().batch_fusion is None

    def test_batch_restores_thread_setting(self, spd36, rng):
        prev = set_kernel_threads(None)
        try:
            mvn_probability_batch(_boxes(spd36.shape[0], rng)[:2], spd36,
                                  n_samples=96, tile_size=12, rng=0,
                                  kernel_threads=2)
            assert resolve_kernel_threads() is None
        finally:
            set_kernel_threads(prev)


class TestFusionParity:
    @pytest.mark.parametrize("method", ["dense", "tlr"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_fused_bitwise_matches_interleaved(self, spd36, rng, method, seed):
        n = spd36.shape[0]
        boxes = _boxes(n, rng)
        kwargs = dict(method=method, n_samples=200, tile_size=7, rng=seed)
        if method == "tlr":
            kwargs["accuracy"] = 1e-5
        fused = mvn_probability_batch(boxes, spd36, fusion="fused", **kwargs)
        inter = mvn_probability_batch(boxes, spd36, fusion="interleaved", **kwargs)
        for f, i in zip(fused, inter):
            assert f.probability == i.probability
            assert f.error == i.error
        assert all(r.details["fusion"] == "fused" for r in fused)
        assert all(r.details["fusion"] == "interleaved" for r in inter)

    def test_auto_fuses_only_lane_aligned(self, spd36, rng):
        boxes = _boxes(spd36.shape[0], rng)[:2]
        aligned = mvn_probability_batch(boxes, spd36, n_samples=96,
                                        tile_size=12, rng=1)
        assert all(r.details["fusion"] == "fused" for r in aligned)
        ragged = mvn_probability_batch(boxes, spd36, n_samples=90,
                                       tile_size=12, rng=1)
        assert all(r.details["fusion"] == "interleaved" for r in ragged)
        single = mvn_probability_batch(boxes[:1], spd36, n_samples=96,
                                       tile_size=12, rng=1)
        assert single[0].details["fusion"] == "interleaved"

    def test_auto_matches_forced_fused_bitwise(self, spd36, rng):
        boxes = _boxes(spd36.shape[0], rng)
        auto = mvn_probability_batch(boxes, spd36, n_samples=200, tile_size=7, rng=3)
        forced = mvn_probability_batch(boxes, spd36, n_samples=200, tile_size=7,
                                       rng=3, fusion="fused")
        for a, f in zip(auto, forced):
            assert a.probability == f.probability
            assert a.error == f.error

    def test_fused_with_return_prefix_rejected(self, spd36):
        n = spd36.shape[0]
        factor = factorize(spd36, method="dense", tile_size=12)
        options = PMVNOptions(n_samples=96, rng=0, return_prefix=True,
                              fusion="fused")
        boxes = [(np.full(n, -np.inf), np.full(n, 1.0))] * 2
        with pytest.raises(ValueError, match="return_prefix"):
            pmvn_integrate_batch(boxes, factor, options)

    def test_fusion_mode_validated(self, spd36):
        assert BATCH_FUSION_MODES == ("auto", "fused", "interleaved")
        factor = factorize(spd36, method="dense", tile_size=12)
        n = spd36.shape[0]
        boxes = [(np.full(n, -np.inf), np.full(n, 1.0))] * 2
        with pytest.raises(ValueError, match="fusion"):
            pmvn_integrate_batch(boxes, factor,
                                 PMVNOptions(n_samples=96, rng=0, fusion="speedy"))

    def test_fused_uses_wide_tiles(self, spd36, rng):
        """The fused sweep's chain block spans boxes (that is the point)."""
        boxes = _boxes(spd36.shape[0], rng)
        fused = mvn_probability_batch(boxes, spd36, n_samples=96, tile_size=12,
                                      rng=2, fusion="fused")
        assert fused[0].details["fused_cols"] == 96 * len(boxes)
        assert fused[0].details["chain_block"] > 96


class TestAuxAccounting:
    def test_aux_counters_reported_as_sweep_delta(self, spd36, rng):
        """A backend's cumulative aux counters surface as per-sweep deltas
        (the cupy backend's transfer accounting rides this path)."""
        import repro.core.kernel_backend as kb

        numpy_backend = get_backend("numpy")
        state = {"h2d_seconds": 0.0}

        def fake_run(*args, **kwargs):
            state["h2d_seconds"] += 0.5
            return numpy_backend.run(*args, **kwargs)

        fake = KernelBackend(name="fake-accel", run=fake_run,
                             bit_identical=True, aux=lambda: dict(state))
        register_backend(fake)
        try:
            boxes = _boxes(spd36.shape[0], rng)[:2]
            out = mvn_probability_batch(boxes, spd36, n_samples=96, tile_size=12,
                                        rng=0, backend="fake-accel")
            assert out[0].details["backend"] == "fake-accel"
            # delta for this sweep only, despite the cumulative counter
            assert out[0].details["h2d_seconds"] > 0.0
            again = mvn_probability_batch(boxes, spd36, n_samples=96, tile_size=12,
                                          rng=0, backend="fake-accel")
            assert again[0].details["h2d_seconds"] == pytest.approx(
                out[0].details["h2d_seconds"])
        finally:
            kb._REGISTRY.pop("fake-accel", None)


class TestCalibrationPerBackend:
    def test_calibrate_records_backend(self):
        from repro.perf.calibration import calibrate

        result = calibrate(tile_size=32, rank=4, n_chains=64, backend="reference")
        assert result.backend == "reference"
        assert result.qmc_rows_per_second > 0

    def test_calibrate_backends_collapses_fallbacks(self):
        from repro.perf.calibration import calibrate_backends

        rates = calibrate_backends(["numpy", "numba-parallel"],
                                   tile_size=32, rank=4, n_chains=64)
        # on a numba-less install both names resolve to numpy: one entry
        for name, result in rates.items():
            assert name in available_backends()
            assert result.backend == name


class TestServeFusionStamp:
    def test_served_details_record_fusion(self, spd36):
        from repro.serve import QueryBroker, ServeConfig

        n = spd36.shape[0]
        config = ServeConfig(n_shards=1, worker_mode="thread", max_batch=4,
                             batch_window=0.05)
        solver_config = SolverConfig(method="dense", n_samples=96, tile_size=12)
        with QueryBroker(config, solver_config) as broker:
            futures = [
                broker.submit(np.full(n, -np.inf), np.full(n, 0.5 + 0.1 * i),
                              spd36, rng=0)
                for i in range(4)
            ]
            results = [f.result() for f in futures]
        modes = {r.details["serve"]["fusion"] for r in results}
        assert modes <= {"fused", "interleaved"}
        # concurrently submitted same-Sigma queries micro-batch, and 96 is
        # lane-aligned, so at least one batch must have fused
        assert "fused" in modes
