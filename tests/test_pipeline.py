"""Tests for the multi-query pipeline subsystem (repro.query.pipeline).

Five concerns:

* **construction** — every ``add_*`` call validates immediately (duplicate
  names, unknown refs, unknown upstreams, malformed parameters), freezing
  seals the graph, and the generators expand into the documented nodes,
* **compilation** — same-settings query nodes fuse into one sweep stage;
  generator seeds and explicit per-query means stay unfused; the sharing
  edges are explicit,
* **planning** — ``plan_pipeline`` resolves one method per covariance,
  counts fused queries, and models costs once per ref,
* **execution** — the solver executor is bit-identical to the loop of
  single calls it replaces, agrees with the broker executor, honors
  ``negate=True`` exactly like ``negative_confidence_region``, and the
  factor-bound executor matches a direct ``pmvn_integrate_batch`` call,
* **adaptive schedule** — ``run_adaptive`` / ``escalate_batch`` implement
  the escalation loop shared by every entry point.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro import MVNQuery, MVNSolver, QueryBroker, ServeConfig, SolverConfig
from repro.batch import FactorCache
from repro.core.pmvn import PMVNOptions, pmvn_integrate_batch
from repro.distributed import ClusterSpec
from repro.excursion import excursion_analysis, excursion_threshold_sweep, negative_confidence_region
from repro.query import (
    QueryPipeline,
    QueryPlanner,
    escalate_batch,
    execute_factor_bound,
    execute_pipeline,
    run_adaptive,
    simulate_pipeline,
)
from repro.core.factor import factorize


def _field(n: int) -> tuple[np.ndarray, np.ndarray]:
    pts = np.linspace(0.0, 1.0, n)
    sigma = np.exp(-np.abs(pts[:, None] - pts[None, :]) / 0.3) + 1e-6 * np.eye(n)
    return sigma, np.linspace(-1.0, 1.0, n)


@pytest.fixture
def sigma8() -> np.ndarray:
    return _field(8)[0]


def _query(n: int, lo: float = 0.0, **kwargs) -> MVNQuery:
    return MVNQuery(np.full(n, lo), np.full(n, np.inf), **kwargs)


class TestConstruction:
    def test_duplicate_node_name(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_query("q", _query(8), sigma="s")
        with pytest.raises(ValueError, match="duplicate node name"):
            pipe.add_query("q", _query(8), sigma="s")

    def test_duplicate_sigma_name(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        with pytest.raises(ValueError, match="duplicate sigma ref"):
            pipe.add_sigma("s", sigma8)

    def test_unknown_sigma_ref(self, sigma8):
        pipe = QueryPipeline()
        with pytest.raises(ValueError, match="unknown sigma ref"):
            pipe.add_query("q", _query(8), sigma="nope")
        with pytest.raises(ValueError, match="unknown sigma ref"):
            pipe.add_crd("c", sigma="nope", threshold=0.0)

    def test_unknown_upstream(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        with pytest.raises(ValueError, match="unknown upstream node"):
            pipe.add_query("q", _query(8), sigma="s", after=("ghost",))
        pipe.add_query("q", _query(8), sigma="s")
        with pytest.raises(ValueError, match="unknown upstream node"):
            pipe.add_map("m", lambda r: r, "ghost")
        with pytest.raises(ValueError, match="unknown upstream node"):
            pipe.add_combine("c", lambda *r: r, ("q", "ghost"))

    def test_dimension_mismatch(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        with pytest.raises(ValueError, match="dimension"):
            pipe.add_query("q", _query(5), sigma="s")

    def test_query_type_checked(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        with pytest.raises(ValueError, match="needs an MVNQuery"):
            pipe.add_query("q", object(), sigma="s")

    def test_crd_parameter_validation(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        with pytest.raises(ValueError, match="finite threshold"):
            pipe.add_crd("c", sigma="s", threshold=np.nan)
        with pytest.raises(ValueError, match="unknown algorithm"):
            pipe.add_crd("c", sigma="s", threshold=0.0, algorithm="magic")
        with pytest.raises(ValueError, match="n_samples"):
            pipe.add_crd("c", sigma="s", threshold=0.0, n_samples=0)
        with pytest.raises(ValueError, match="nugget"):
            pipe.add_crd("c", sigma="s", threshold=0.0, nugget=-1.0)

    def test_reduction_validation(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_query("q", _query(8), sigma="s")
        with pytest.raises(ValueError, match="needs a callable"):
            pipe.add_map("m", 42, "q")
        with pytest.raises(ValueError, match="at least one source"):
            pipe.add_combine("c", lambda *r: r, ())

    def test_sweep_generator_validation(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_sigma("bound")  # factor-bound, no dimension
        with pytest.raises(ValueError, match="at least one threshold"):
            pipe.add_threshold_sweep("t", [], sigma="s")
        with pytest.raises(ValueError, match="finite"):
            pipe.add_threshold_sweep("t", [0.0, np.inf], sigma="s")
        with pytest.raises(ValueError, match="dimension"):
            pipe.add_threshold_sweep("t", [0.0], sigma="bound")
        with pytest.raises(ValueError, match="at least one threshold"):
            pipe.add_excursion_sweep("e", [], sigma="s")

    def test_empty_pipeline_cannot_freeze(self):
        with pytest.raises(ValueError, match="has no nodes"):
            QueryPipeline(name="empty").freeze()

    def test_frozen_rejects_mutation(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_query("q", _query(8), sigma="s")
        pipe.compile()
        assert pipe.frozen
        with pytest.raises(ValueError, match="frozen"):
            pipe.add_query("q2", _query(8), sigma="s")
        with pytest.raises(ValueError, match="frozen"):
            pipe.add_sigma("s2", sigma8)

    def test_introspection(self, sigma8):
        pipe = QueryPipeline(name="intro")
        pipe.add_sigma("s", sigma8)
        pipe.add_query("q", _query(8), sigma="s")
        pipe.add_map("m", lambda r: r.probability, "q")
        assert pipe.node_names == ("q", "m")
        assert pipe.sigma_names == ("s",)
        assert pipe.node("m").inputs == ("q",)
        assert pipe.sigma_ref("s").n == 8
        assert len(pipe) == 2


class TestCompilation:
    def test_threshold_sweep_fuses(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_threshold_sweep("sweep", [0.0, 0.3, 0.6], sigma="s",
                                 n_samples=100, rng=0)
        stages = pipe.compile()
        assert [stage.kind for stage in stages] == ["sweep", "python"]
        assert stages[0].fused and len(stages[0].nodes) == 3
        assert pipe.compile() is stages  # memoized
        edges = pipe.edges()
        assert edges["shared_sweep"] == [stages[0].nodes]
        assert len(edges["shared_factorization"]["s"]) == 3

    def test_generator_rng_does_not_fuse(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        rng = np.random.default_rng(0)
        pipe.add_query("a", _query(8, rng=rng), sigma="s")
        pipe.add_query("b", _query(8, 0.2, rng=rng), sigma="s")
        stages = pipe.compile()
        assert [stage.kind for stage in stages] == ["sweep", "sweep"]
        assert not any(stage.fused for stage in stages)

    def test_explicit_mean_does_not_fuse(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_query("a", _query(8, mean=np.zeros(8), rng=0), sigma="s")
        pipe.add_query("b", _query(8, 0.2, mean=np.zeros(8), rng=0), sigma="s")
        assert not any(stage.fused for stage in pipe.compile())

    def test_different_settings_do_not_fuse(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_query("a", _query(8, n_samples=100, rng=0), sigma="s")
        pipe.add_query("b", _query(8, n_samples=200, rng=0), sigma="s")
        assert not any(stage.fused for stage in pipe.compile())

    def test_explain_mentions_structure(self, sigma8):
        pipe = QueryPipeline(name="named")
        pipe.add_sigma("s", sigma8)
        pipe.add_threshold_sweep("sweep", [0.0, 0.5], sigma="s", rng=0)
        text = pipe.explain()
        assert "'named'" in text and "fused x2" in text and "'s'" in text


class TestPlanning:
    def test_plan_pipeline_whole_graph(self, sigma8):
        pipe = QueryPipeline(name="planned")
        pipe.add_sigma("s", sigma8)
        pipe.add_threshold_sweep("sweep", [0.0, 0.3, 0.6], sigma="s",
                                 n_samples=100, rng=0)
        plan = QueryPlanner().plan_pipeline(pipe, SolverConfig(method="dense"))
        assert plan.pipeline == "planned"
        assert plan.n_stages == 2
        assert plan.fused_queries == 3
        assert plan.sigma_plans["s"].method == "dense"
        assert plan.sigma_plans["s"].n_samples == 100
        assert plan.costs["total"] == pytest.approx(plan.costs["sigma:s"])
        text = plan.describe()
        assert "fused queries    : 3" in text and "method=dense" in text

    def test_factor_bound_ref_without_dimension_has_no_plan(self):
        pipe = QueryPipeline()
        pipe.add_sigma("bound")
        pipe.add_query("q", _query(4), sigma="bound")
        plan = QueryPlanner().plan_pipeline(pipe, SolverConfig(method="dense"))
        assert plan.sigma_plans["bound"] is None
        assert plan.probes["bound"] is None
        assert "factor-bound" in plan.describe()


class TestSolverExecution:
    def test_fused_sweep_bit_identical_to_singles(self, sigma8):
        thresholds = [0.0, 0.25, 0.5]
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8, mean=np.linspace(-0.5, 0.5, 8))
        pipe.add_threshold_sweep("sweep", thresholds, sigma="s",
                                 n_samples=150, rng=0)
        with MVNSolver(SolverConfig(method="dense", n_samples=150)) as solver:
            out = execute_pipeline(pipe, solver)
            model = solver.model(sigma8, mean=np.linspace(-0.5, 0.5, 8))
            singles = [model.probability(np.full(8, u), np.full(8, np.inf),
                                         n_samples=150, rng=0)
                       for u in thresholds]
        for idx, single in enumerate(singles):
            assert out[f"sweep[{idx}]"].probability == single.probability
            assert out[f"sweep[{idx}]"].error == single.error
        gathered = out["sweep"]
        assert np.array_equal(gathered["probabilities"],
                              [r.probability for r in singles])
        assert out.plan.fused_queries == 3
        assert out.details["executor"] == "solver"
        assert "sweep" in out and len(out) == 4

    def test_broker_matches_solver(self, sigma8):
        pipe = QueryPipeline(name="parity")
        pipe.add_sigma("s", sigma8)
        pipe.add_threshold_sweep("sweep", [0.0, 0.4], sigma="s",
                                 n_samples=120, rng=7)
        with MVNSolver(SolverConfig(method="dense", n_samples=120)) as solver:
            via_solver = execute_pipeline(pipe, solver)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread"),
                         SolverConfig(method="dense", n_samples=120)) as broker:
            via_broker = execute_pipeline(pipe, broker)
        for name in ("sweep[0]", "sweep[1]"):
            assert via_broker[name].probability == via_solver[name].probability
        assert via_broker.plan is None
        assert via_broker.details["executor"] == "broker"

    def test_crd_on_broker_raises(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_crd("c", sigma="s", threshold=0.0, n_samples=100, rng=0)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread"),
                         SolverConfig(method="dense")) as broker:
            with pytest.raises(ValueError, match="box queries only"):
                execute_pipeline(pipe, broker)

    def test_negated_crd_matches_negative_confidence_region(self):
        sigma, mean = _field(12)
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma, mean=mean)
        pipe.add_crd("neg", sigma="s", threshold=0.2, negate=True,
                     n_samples=100, rng=0)
        with MVNSolver(SolverConfig(method="dense")) as solver:
            out = execute_pipeline(pipe, solver)
        direct = negative_confidence_region(sigma, mean, 0.2,
                                            n_samples=100, rng=0)
        assert np.array_equal(out["neg"].confidence_function,
                              direct.confidence_function)
        assert out["neg"].threshold == 0.2
        assert out["neg"].details["set_type"] == "negative"

    def test_wrong_executor_type(self, sigma8):
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_query("q", _query(8), sigma="s")
        with pytest.raises(TypeError, match="MVNSolver or QueryBroker"):
            execute_pipeline(pipe, object())

    def test_factor_bound_ref_rejected_on_solver(self):
        pipe = QueryPipeline()
        pipe.add_sigma("bound", n=4)
        pipe.add_query("q", _query(4), sigma="bound")
        with MVNSolver(SolverConfig(method="dense")) as solver:
            with pytest.raises(ValueError, match="factor-bound"):
                execute_pipeline(pipe, solver)


class TestFactorBoundExecution:
    def test_prefix_chain_matches_direct_batch(self, sigma8):
        corr = sigma8 / np.sqrt(np.outer(np.diag(sigma8), np.diag(sigma8)))
        factor = factorize(corr, method="dense", tile_size=4)
        a = np.linspace(-0.5, 0.5, 8)
        pipe = QueryPipeline(name="chain")
        pipe.add_sigma("problem", n=8)
        pipe.add_prefix_chain("chain", a, sigma="problem", sizes=[2, 5, 8])
        options = PMVNOptions(n_samples=200, chain_block=factor.tile_size,
                              qmc="richtmyer", rng=3)
        out = execute_factor_bound(pipe, factor, options)
        probs, errs = out["chain"]

        boxes = []
        for size in (2, 5, 8):
            lo = np.full(8, -np.inf)
            lo[:size] = a[:size]
            boxes.append((lo, np.full(8, np.inf)))
        direct = pmvn_integrate_batch(
            boxes, factor,
            PMVNOptions(n_samples=200, chain_block=factor.tile_size,
                        qmc="richtmyer", rng=3))
        assert np.array_equal(probs, [r.probability for r in direct])
        assert np.array_equal(errs, [r.error for r in direct])
        assert out.details["executor"] == "factor"

    def test_crd_node_rejected_factor_bound(self, sigma8):
        factor = factorize(np.eye(4), method="dense", tile_size=2)
        pipe = QueryPipeline()
        pipe.add_sigma("s", sigma8)
        pipe.add_crd("c", sigma="s", threshold=0.0)
        with pytest.raises(ValueError, match="query and reduction nodes"):
            execute_factor_bound(pipe, factor, PMVNOptions(n_samples=50))


class TestExcursionSweep:
    def test_sweep_shares_factorizations_and_matches_singles(self):
        sigma, mean = _field(20)
        cache = FactorCache(max_entries=8)
        sweep = excursion_threshold_sweep(sigma, mean, [0.0, 0.4],
                                          n_samples=120, rng=0, cache=cache)
        assert cache.factorize_count == 2  # one per excursion sign, not per threshold
        for threshold, analysis in zip((0.0, 0.4), sweep):
            alone = excursion_analysis(sigma, mean, threshold,
                                       n_samples=120, rng=0)
            assert np.array_equal(analysis.positive.confidence_function,
                                  alone.positive.confidence_function)
            assert np.array_equal(analysis.negative.confidence_function,
                                  alone.negative.confidence_function)
            assert analysis.summary() == alone.summary()


class TestSimulation:
    def test_simulate_pipeline_deterministic(self, sigma8):
        pipe = QueryPipeline(name="simulated")
        pipe.add_sigma("s", sigma8)
        pipe.add_threshold_sweep("sweep", [0.0, 0.5], sigma="s",
                                 n_samples=100, rng=0)
        config = SolverConfig(method="dense")
        result_a, tasks_a = simulate_pipeline(pipe, config, ClusterSpec(n_nodes=2))
        result_b, tasks_b = simulate_pipeline(pipe, config, ClusterSpec(n_nodes=2))
        assert result_a.makespan == result_b.makespan > 0.0
        tags = [task.tag for task in tasks_a]
        assert tags.count("factorize") == 1
        assert "sweep" in tags and "reduce" in tags
        assert [t.name for t in tasks_a] == [t.name for t in tasks_b]

    def test_simulate_needs_dimension(self):
        pipe = QueryPipeline()
        pipe.add_sigma("bound")
        pipe.add_query("q", _query(4), sigma="bound")
        with pytest.raises(ValueError, match="cannot simulate"):
            simulate_pipeline(pipe, SolverConfig(method="dense"),
                              ClusterSpec(n_nodes=2))


class TestAdaptiveSchedule:
    def _plan(self, n_samples=100, target_error=None, max_samples=1000):
        return SimpleNamespace(n_samples=n_samples, target_error=target_error,
                               max_samples=max_samples)

    def test_run_adaptive_single_round_without_target(self):
        calls = []

        def evaluate(n):
            calls.append(n)
            return SimpleNamespace(error=0.5)

        result, rounds, used, met = run_adaptive(evaluate, self._plan())
        assert calls == [100] and rounds == 1 and used == 100 and met is None
        assert result.error == 0.5

    def test_run_adaptive_escalates_until_met(self):
        errors = iter([4e-2, 1e-4])
        calls = []

        def evaluate(n):
            calls.append(n)
            return SimpleNamespace(error=next(errors))

        result, rounds, used, met = run_adaptive(
            evaluate, self._plan(target_error=1e-3, max_samples=10**7))
        assert rounds == 2 and met is True
        assert calls[1] > calls[0]
        assert used == sum(calls)
        assert result.error == 1e-4

    def test_run_adaptive_flags_budget_exhaustion(self):
        def evaluate(n):
            return SimpleNamespace(error=1.0)  # never meets the target

        result, rounds, used, met = run_adaptive(
            evaluate, self._plan(n_samples=100, target_error=1e-6,
                                 max_samples=200))
        assert met is False
        assert rounds >= 1

    def test_escalate_batch_groups_resweeps(self):
        plan = self._plan(n_samples=100, target_error=1e-3, max_samples=10**7)
        results = [SimpleNamespace(error=4e-2), SimpleNamespace(error=1e-5),
                   SimpleNamespace(error=4e-2)]
        rounds = [1, 1, 1]
        used = [100, 100, 100]
        sweeps = []

        def evaluate(indices, n_next):
            sweeps.append((tuple(indices), n_next))
            return [SimpleNamespace(error=1e-5) for _ in indices]

        escalate_batch(evaluate, plan, results, rounds, used)
        # the two unmet boxes share one re-sweep; the met box is untouched
        assert len(sweeps) == 1 and sweeps[0][0] == (0, 2)
        assert rounds == [2, 1, 2] and used[1] == 100
        assert all(r.error == 1e-5 or r.error == 1e-5 for r in results)

    def test_escalate_batch_noop_when_met(self):
        plan = self._plan(n_samples=100, target_error=1e-3)
        results = [SimpleNamespace(error=1e-5)]
        rounds, used = [1], [100]
        escalate_batch(lambda idx, n: pytest.fail("should not re-sweep"),
                       plan, results, rounds, used)
        assert rounds == [1] and used == [100]


class TestCLI:
    def test_pipeline_explain_smoke(self, capsys):
        from repro.cli import main

        assert main(["pipeline", "explain", "--grid", "6",
                     "--thresholds", "2", "--samples", "200"]) == 0
        text = capsys.readouterr().out
        assert "pipeline" in text and "fused" in text.lower() or "stage" in text
