"""Tests for Gaussian field sampling and the baseline MVN estimators."""

import numpy as np
import pytest
from scipy.stats import multivariate_normal, norm

from repro.fields import (
    conditional_simulation,
    sample_from_cholesky,
    sample_from_covariance,
    sample_gaussian_field,
)
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.mvn import MVNResult, mvn_mc, mvn_sov, mvn_sov_vectorized, sov_transform_limits


class TestFieldSampling:
    def test_sample_shape(self, small_spd, rng):
        samples = sample_from_covariance(small_spd, n_samples=5, rng=rng)
        assert samples.shape == (8, 5)

    def test_sample_covariance_converges(self, rng):
        sigma = np.array([[2.0, 0.8], [0.8, 1.0]])
        samples = sample_from_covariance(sigma, n_samples=40_000, rng=rng)
        emp = np.cov(samples)
        np.testing.assert_allclose(emp, sigma, atol=0.08)

    def test_sample_mean_shift(self, small_spd, rng):
        mean = np.arange(8.0)
        samples = sample_from_covariance(small_spd, n_samples=20_000, mean=mean, rng=rng)
        np.testing.assert_allclose(samples.mean(axis=1), mean, atol=0.15)

    def test_sample_from_cholesky_matches_covariance_sampler(self, small_spd):
        factor = np.linalg.cholesky(small_spd)
        a = sample_from_cholesky(factor, n_samples=3, rng=42)
        b = sample_from_covariance(small_spd, n_samples=3, rng=42)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_semidefinite_fallback(self, rng):
        # rank-deficient covariance: Cholesky fails, eigen fallback must work
        u = rng.standard_normal((6, 2))
        sigma = u @ u.T + 1e-14 * np.eye(6)
        samples = sample_from_covariance(sigma, n_samples=4, rng=rng)
        assert np.all(np.isfinite(samples))

    def test_gaussian_field_variance(self, rng):
        geom = Geometry.regular_grid(7, 7)
        kern = ExponentialKernel(2.0, 0.2)
        samples = sample_gaussian_field(kern, geom.locations, n_samples=4000, rng=rng)
        assert samples.shape == (49, 4000)
        np.testing.assert_allclose(samples.var(axis=1).mean(), 2.0, rtol=0.1)

    def test_invalid_inputs(self, small_spd):
        with pytest.raises(ValueError):
            sample_from_covariance(small_spd, n_samples=0)
        with pytest.raises(ValueError):
            sample_from_cholesky(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            sample_from_covariance(small_spd, mean=np.zeros(3))

    def test_conditional_simulation_interpolates_observations(self, rng):
        geom = Geometry.regular_grid(6, 6)
        kern = ExponentialKernel(1.0, 0.3)
        sigma = build_covariance(kern, geom.locations, nugget=1e-10)
        observed = np.array([0, 7, 14, 21, 28, 35])
        values = rng.standard_normal(observed.size)
        sims = conditional_simulation(sigma, observed, values, n_samples=200, noise_std=0.0, rng=rng)
        np.testing.assert_allclose(sims[observed].mean(axis=1), values, atol=0.05)
        np.testing.assert_allclose(sims[observed].std(axis=1), 0.0, atol=0.05)

    def test_conditional_simulation_validation(self, small_spd):
        with pytest.raises(ValueError):
            conditional_simulation(small_spd, [0, 1], np.zeros(3))
        with pytest.raises(ValueError):
            conditional_simulation(small_spd, [99], np.zeros(1))
        with pytest.raises(ValueError):
            conditional_simulation(small_spd, [0], np.zeros(1), noise_std=-1.0)


class TestMVNResult:
    def test_float_conversion(self):
        res = MVNResult(0.25, 0.01, 100, 3, "mc")
        assert float(res) == pytest.approx(0.25)

    def test_repr_contains_method(self):
        assert "sov" in repr(MVNResult(0.1, 0.0, 10, 2, "sov"))


class TestMCBaseline:
    def test_univariate_matches_normal_cdf(self):
        res = mvn_mc([-np.inf], [0.7], np.array([[1.0]]), n_samples=200_000, rng=0)
        assert res.probability == pytest.approx(norm.cdf(0.7), abs=0.01)

    def test_bivariate_matches_scipy(self):
        sigma = np.array([[1.0, 0.6], [0.6, 1.0]])
        b = np.array([0.3, -0.2])
        ref = multivariate_normal(cov=sigma).cdf(b)
        res = mvn_mc(np.full(2, -np.inf), b, sigma, n_samples=200_000, rng=1)
        assert res.probability == pytest.approx(ref, abs=0.01)

    def test_error_estimate_scale(self):
        res = mvn_mc([-1.0], [1.0], np.array([[1.0]]), n_samples=10_000, rng=2)
        assert 0.0 < res.error < 0.02

    def test_mean_shift(self):
        res = mvn_mc([-np.inf], [0.0], np.array([[1.0]]), n_samples=100_000, mean=1.0, rng=3)
        assert res.probability == pytest.approx(norm.cdf(-1.0), abs=0.01)

    def test_validates_covariance(self):
        with pytest.raises(ValueError):
            mvn_mc([0.0], [1.0], np.array([[0.0]]))


class TestSOV:
    def _reference(self, sigma, b):
        return multivariate_normal(cov=sigma, allow_singular=False).cdf(b)

    def test_limit_transform_requires_spd(self):
        with pytest.raises(ValueError):
            sov_transform_limits([0.0, 0.0], [1.0, 1.0], np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_transform_absorbs_mean(self, small_spd):
        a, b, factor = sov_transform_limits(np.zeros(8), np.ones(8), small_spd, mean=0.5)
        np.testing.assert_allclose(a, -0.5)
        np.testing.assert_allclose(b, 0.5)
        np.testing.assert_allclose(factor @ factor.T, small_spd, atol=1e-9)

    @pytest.mark.parametrize("estimator", [mvn_sov, mvn_sov_vectorized])
    def test_matches_scipy_orthant(self, estimator, rng):
        a_mat = rng.standard_normal((5, 5))
        sigma = a_mat @ a_mat.T + 5 * np.eye(5)
        b = rng.standard_normal(5)
        ref = self._reference(sigma, b)
        res = estimator(np.full(5, -np.inf), b, sigma, n_samples=3000, rng=0)
        assert res.probability == pytest.approx(ref, abs=5e-3)

    def test_vectorized_matches_scalar_loop(self, rng):
        a_mat = rng.standard_normal((4, 4))
        sigma = a_mat @ a_mat.T + 4 * np.eye(4)
        a = np.full(4, -1.0)
        b = np.full(4, 1.5)
        slow = mvn_sov(a, b, sigma, n_samples=800, rng=7)
        fast = mvn_sov_vectorized(a, b, sigma, n_samples=800, rng=7)
        assert fast.probability == pytest.approx(slow.probability, rel=1e-10)

    def test_two_sided_interval_independent_case(self):
        """Independent components: probability factorizes exactly."""
        sigma = np.diag([1.0, 4.0, 0.25])
        a = np.array([-1.0, -2.0, -0.5])
        b = np.array([1.0, 2.0, 0.5])
        expected = np.prod(norm.cdf(b / np.sqrt(np.diag(sigma))) - norm.cdf(a / np.sqrt(np.diag(sigma))))
        res = mvn_sov_vectorized(a, b, sigma, n_samples=4000, rng=1)
        assert res.probability == pytest.approx(expected, abs=2e-3)

    def test_qmc_converges_faster_than_mc_sampling(self, rng):
        """QMC (Richtmyer) error should beat plain pseudo-random sampling."""
        a_mat = rng.standard_normal((6, 6))
        sigma = a_mat @ a_mat.T + 6 * np.eye(6)
        b = np.full(6, 0.5)
        ref = self._reference(sigma, b)
        err_qmc, err_mc = [], []
        for seed in range(5):
            err_qmc.append(abs(mvn_sov_vectorized(np.full(6, -np.inf), b, sigma, 2000, qmc="richtmyer", rng=seed).probability - ref))
            err_mc.append(abs(mvn_sov_vectorized(np.full(6, -np.inf), b, sigma, 2000, qmc="random", rng=seed).probability - ref))
        assert np.median(err_qmc) <= np.median(err_mc) * 1.5

    def test_mean_handling(self, rng):
        a_mat = rng.standard_normal((3, 3))
        sigma = a_mat @ a_mat.T + 3 * np.eye(3)
        mean = np.array([0.5, -0.5, 1.0])
        b = np.array([1.0, 0.0, 2.0])
        ref = multivariate_normal(mean=mean, cov=sigma).cdf(b)
        res = mvn_sov_vectorized(np.full(3, -np.inf), b, sigma, n_samples=4000, mean=mean, rng=0)
        assert res.probability == pytest.approx(ref, abs=5e-3)

    def test_chain_values_returned_when_requested(self, small_spd):
        res = mvn_sov_vectorized(
            np.full(8, -1.0), np.full(8, 1.0), small_spd, n_samples=500, rng=0, return_chain_values=True
        )
        assert res.details["chain_values"].shape == (500,)

    def test_error_decreases_with_samples(self, small_spd):
        small = mvn_sov_vectorized(np.full(8, -1.0), np.full(8, 1.0), small_spd, n_samples=200, rng=0)
        large = mvn_sov_vectorized(np.full(8, -1.0), np.full(8, 1.0), small_spd, n_samples=20_000, rng=0)
        assert large.error < small.error
