"""Tests for the excursion application layer: maps, MC validation, comparisons."""

import numpy as np
import pytest

from repro.core import confidence_region
from repro.excursion import (
    compare_confidence_functions,
    excursion_map,
    marginal_probability_map,
    mc_validate_regions,
    region_overlap,
)
from repro.core.kernel_backend import available_backends
from repro.kernels import ExponentialKernel, Geometry, build_covariance

# parametrize the heavier estimator-driven cases over the accelerated sweep
# backends, like the newer suites: numba rows skip (never silently fall back)
# when the JIT is not installed
BACKENDS = [
    "numpy",
    pytest.param("numba", marks=pytest.mark.skipif(
        "numba" not in available_backends(), reason="numba not installed")),
]


@pytest.fixture
def field_setup(rng):
    geom = Geometry.regular_grid(6, 5)
    kern = ExponentialKernel(1.0, 0.3)
    sigma = build_covariance(kern, geom.locations, nugget=1e-8)
    mean = 1.2 * np.exp(-((geom.locations[:, 0] - 0.3) ** 2 + (geom.locations[:, 1] - 0.4) ** 2) / 0.15)
    return geom, sigma, mean


class TestMaps:
    def test_marginal_map_shape(self, field_setup):
        geom, sigma, mean = field_setup
        img = marginal_probability_map(geom, mean, np.diag(sigma), threshold=0.5)
        assert img.shape == geom.grid_shape
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_marginal_map_irregular_geometry(self, rng):
        geom = Geometry.irregular(20, rng=0)
        out = marginal_probability_map(geom, np.zeros(20), np.ones(20), threshold=0.0)
        assert out.shape == (20,)
        np.testing.assert_allclose(out, 0.5)

    def test_excursion_map_binary(self, field_setup):
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 0.5, n_samples=1000, tile_size=10, rng=0)
        img = excursion_map(geom, res, alpha=0.3)
        assert img.shape == geom.grid_shape
        assert set(np.unique(img)).issubset({0.0, 1.0})

    def test_region_overlap_identical(self):
        mask = np.array([1, 0, 1, 1, 0], dtype=float)
        stats = region_overlap(mask, mask)
        assert stats["jaccard"] == 1.0
        assert stats["sym_diff_fraction"] == 0.0

    def test_region_overlap_disjoint(self):
        a = np.array([1, 1, 0, 0], dtype=float)
        b = np.array([0, 0, 1, 1], dtype=float)
        stats = region_overlap(a, b)
        assert stats["jaccard"] == 0.0
        assert stats["sym_diff_fraction"] == 1.0

    def test_region_overlap_empty_masks(self):
        stats = region_overlap(np.zeros(4), np.zeros(4))
        assert stats["jaccard"] == 1.0

    def test_region_overlap_shape_mismatch(self):
        with pytest.raises(ValueError):
            region_overlap(np.zeros(3), np.zeros(4))


class TestMCValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_phat_at_least_level_up_to_mc_error(self, field_setup, backend):
        """By construction P(region ⊆ exceedance set) >= 1-alpha; the MC check
        must therefore find p_hat >= level (minus Monte Carlo noise)."""
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 0.5, n_samples=6000, tile_size=10,
                                rng=1, backend=backend)
        val = mc_validate_regions(res, sigma, mean, n_samples=8000, rng=2)
        nonempty = [i for i, lvl in enumerate(val.levels) if res.region_size(1 - lvl) > 0]
        assert nonempty, "expected at least one non-empty region level"
        assert np.all(val.differences[nonempty] <= 0.03)

    def test_empty_regions_trivially_valid(self, field_setup):
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 5.0, n_samples=500, tile_size=10, rng=1)
        val = mc_validate_regions(res, sigma, mean, n_samples=1000, levels=[0.9], rng=0)
        assert val.estimated[0] == 1.0
        assert val.details["empty_levels"] == 1

    def test_levels_validation(self, field_setup):
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 0.5, n_samples=500, tile_size=10, rng=1)
        with pytest.raises(ValueError):
            mc_validate_regions(res, sigma, mean, n_samples=100, levels=[0.0, 0.5])

    def test_result_summary_fields(self, field_setup):
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 0.5, n_samples=1000, tile_size=10, rng=1)
        val = mc_validate_regions(res, sigma, mean, n_samples=2000, levels=[0.2, 0.5, 0.8], rng=3)
        assert val.levels.shape == (3,)
        assert val.max_abs_difference >= 0.0
        assert "p_hat" in str(val) or "1-alpha" in str(val)


class TestCompareConfidenceFunctions:
    def test_identical_results_zero_difference(self, field_setup):
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 0.5, n_samples=1000, tile_size=10, rng=1)
        cmp = compare_confidence_functions(res, res)
        assert cmp["max_pointwise_difference"] == 0.0
        assert np.all(cmp["region_size_difference"] == 0.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dense_vs_tlr_small_difference(self, field_setup, backend):
        """Figure 1/3 claim: dense vs TLR confidence functions differ by <~1e-3
        once the compression accuracy reaches 1e-3 or better."""
        geom, sigma, mean = field_setup
        dense = confidence_region(sigma, mean, 0.5, method="dense", n_samples=4000,
                                  tile_size=10, rng=7, backend=backend)
        tlr = confidence_region(sigma, mean, 0.5, method="tlr", accuracy=1e-4,
                                n_samples=4000, tile_size=10, rng=7, backend=backend)
        cmp = compare_confidence_functions(dense, tlr)
        assert cmp["max_pointwise_difference"] < 2e-3

    def test_tlr_accuracy_sweep_monotone(self, field_setup):
        """Looser TLR accuracy gives a (weakly) larger deviation from dense."""
        geom, sigma, mean = field_setup
        dense = confidence_region(sigma, mean, 0.5, method="dense", n_samples=3000, tile_size=10, rng=11)
        diffs = []
        for eps in (1e-1, 1e-3, 1e-6):
            tlr = confidence_region(sigma, mean, 0.5, method="tlr", accuracy=eps, n_samples=3000, tile_size=10, rng=11)
            diffs.append(compare_confidence_functions(dense, tlr)["max_pointwise_difference"])
        assert diffs[2] <= diffs[0] + 1e-9

    def test_size_mismatch_rejected(self, field_setup, rng):
        geom, sigma, mean = field_setup
        res = confidence_region(sigma, mean, 0.5, n_samples=500, tile_size=10, rng=1)
        other = confidence_region(sigma[:20, :20], mean[:20], 0.5, n_samples=500, tile_size=10, rng=1)
        with pytest.raises(ValueError):
            compare_confidence_functions(res, other)
