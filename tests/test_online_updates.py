"""Online covariance updates: rank-k Cholesky up/down-dates with lineage.

The property harness of the online-updates PR.  The contract under test
(see ``docs/updates.md``):

* ``update_factor(F, U)`` matches ``cholesky(Sigma + U U^T)`` elementwise
  (Cholesky factors are unique, so this pins the whole algebra),
* ``downdate(update(F, U), U)`` round-trips to ``F``,
* a chain of many random up/down-dates stays within drift bounds of a
  from-scratch refactorization,
* a downdate that would destroy positive definiteness raises the typed
  :class:`repro.DowndateError` — never NaNs, never a corrupted factor,
* an updated :class:`repro.solver.Model` answers **bit-identically**
  across every entry point (``Model.probability``, ``probability_batch``,
  the functional API with the updated factor, and :mod:`repro.serve`),
  with consistent plan and lineage stamps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DowndateError,
    FactorLineage,
    MVNSolver,
    SolverConfig,
    lineage_fingerprint,
    mvn_probability,
    update_factor,
)
from repro.batch import FactorCache
from repro.core.factor import factorize
from repro.core.update import normalize_update

_SLOW = settings(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _spd(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _update_matrix(seed: int, n: int, k: int, scale: float = 1.0) -> np.ndarray:
    rng = np.random.default_rng(seed + 1)
    return scale * rng.standard_normal((n, k))


class TestNormalizeAndFingerprint:
    def test_vector_promotes_to_one_column(self):
        u = normalize_update(np.arange(4.0), 4)
        assert u.shape == (4, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            normalize_update(np.ones((3, 2)), 4)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            normalize_update(np.array([[1.0], [np.nan]]), 2)

    def test_empty_update_rejected(self):
        with pytest.raises(ValueError, match="at least one row and one column"):
            normalize_update(np.ones((4, 0)), 4)

    def test_fingerprint_is_deterministic(self):
        u = _update_matrix(0, 8, 2)
        assert lineage_fingerprint("abc", u) == lineage_fingerprint("abc", u)

    def test_fingerprint_depends_on_direction_parent_and_u(self):
        u = _update_matrix(0, 8, 2)
        base = lineage_fingerprint("abc", u)
        assert base != lineage_fingerprint("abc", u, downdate=True)
        assert base != lineage_fingerprint("abd", u)
        assert base != lineage_fingerprint("abc", u + 1e-12)

    def test_vector_and_column_fingerprint_identically(self):
        u = np.arange(6.0)
        assert lineage_fingerprint("p", u) == lineage_fingerprint("p", u[:, None])


class TestDenseUpdateProperties:
    """Elementwise properties of the dense rank-k kernel (Cholesky factors
    are unique, so matching ``cholesky(Sigma + U U^T)`` pins everything)."""

    @_SLOW
    @given(st.integers(0, 400), st.integers(2, 40), st.integers(1, 6),
           st.integers(1, 9))
    def test_update_matches_refactorization(self, seed, n, k, tile_size):
        sigma = _spd(seed, n)
        u = _update_matrix(seed, n, min(k, n))
        factor = factorize(sigma, "dense", tile_size=min(tile_size, n))
        updated = update_factor(factor, u)
        expected = np.linalg.cholesky(sigma + u @ u.T)
        np.testing.assert_allclose(updated.to_dense(), expected,
                                   atol=1e-9 * n, rtol=1e-9)

    @_SLOW
    @given(st.integers(0, 400), st.integers(2, 40), st.integers(1, 6),
           st.integers(1, 9))
    def test_downdate_roundtrips(self, seed, n, k, tile_size):
        sigma = _spd(seed, n)
        u = _update_matrix(seed, n, min(k, n))
        factor = factorize(sigma, "dense", tile_size=min(tile_size, n))
        roundtrip = update_factor(update_factor(factor, u), u, downdate=True)
        np.testing.assert_allclose(roundtrip.to_dense(), factor.to_dense(),
                                   atol=1e-8 * n, rtol=1e-8)

    @_SLOW
    @given(st.integers(0, 200), st.integers(4, 24),
           st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 4),
                              st.booleans()),
                    min_size=8, max_size=14))
    def test_chain_stays_within_drift_bounds(self, seed, n, ops):
        """>= 8 chained up/down-dates track a from-scratch refactorization.

        Downdates use small-norm matrices (``||U||_F^2 < n``) so positive
        definiteness is guaranteed throughout: ``Sigma`` is built with a
        ``n * I`` ridge and every running iterate keeps ``min eig >= n/2``.
        """
        sigma = _spd(seed, n)
        factor = factorize(sigma, "dense", tile_size=max(2, n // 3))
        running = sigma.copy()
        for op_seed, k, downdate in ops:
            scale = 0.1 / np.sqrt(k) if downdate else 1.0
            u = _update_matrix(op_seed, n, k, scale=scale)
            sign = -1.0 if downdate else 1.0
            running = running + sign * (u @ u.T)
            factor = update_factor(factor, u, downdate=downdate)
        expected = np.linalg.cholesky(running)
        np.testing.assert_allclose(factor.to_dense(), expected,
                                   atol=1e-7 * n, rtol=1e-7)

    @_SLOW
    @given(st.integers(0, 200), st.integers(2, 24), st.floats(1.0001, 10.0))
    def test_pd_breaking_downdate_raises_typed_error(self, seed, n, alpha):
        """``Sigma - alpha^2 L e_1 (L e_1)^T`` loses PD for any alpha > 1:
        the kernel must raise DowndateError, not emit NaNs."""
        sigma = _spd(seed, n)
        chol = np.linalg.cholesky(sigma)
        u = alpha * chol[:, 0]
        factor = factorize(sigma, "dense", tile_size=max(2, n // 3))
        before = factor.to_dense()
        with pytest.raises(DowndateError):
            update_factor(factor, u, downdate=True)
        # the input factor is untouched (updates operate on a copy)
        assert np.isfinite(factor.to_dense()).all()
        np.testing.assert_array_equal(factor.to_dense(), before)


class TestTLRUpdate:
    """The low-rank block-refresh path (tight accuracy pins it to dense)."""

    def test_update_matches_refactorization_tightly(self):
        n, k = 48, 3
        sigma = _spd(5, n)
        u = _update_matrix(5, n, k)
        factor = factorize(sigma, "tlr", tile_size=12, accuracy=1e-12)
        updated = update_factor(factor, u)
        expected = np.linalg.cholesky(sigma + u @ u.T)
        np.testing.assert_allclose(updated.to_dense(), expected, atol=1e-8 * n)

    def test_downdate_roundtrips(self):
        n, k = 40, 2
        sigma = _spd(6, n)
        u = _update_matrix(6, n, k)
        factor = factorize(sigma, "tlr", tile_size=10, accuracy=1e-12)
        roundtrip = update_factor(update_factor(factor, u), u, downdate=True)
        np.testing.assert_allclose(roundtrip.to_dense(), factor.to_dense(),
                                   atol=1e-7 * n)

    def test_rank_growth_is_bounded_by_recompression(self):
        n, k = 60, 4
        rng = np.random.default_rng(7)
        # a smooth (compressible) covariance, so TLR ranks are genuinely low
        idx = np.arange(n, dtype=np.float64)
        sigma = np.exp(-np.abs(idx[:, None] - idx[None, :]) / 25.0) + 1e-6 * np.eye(n)
        u = 0.05 * rng.standard_normal((n, k))
        factor = factorize(sigma, "tlr", tile_size=15, accuracy=1e-6)
        before = sum(t.rank for t in factor.tlr.offdiag.values())
        n_tiles = len(factor.tlr.offdiag)
        updated = update_factor(factor, u)
        after = sum(t.rank for t in updated.tlr.offdiag.values())
        # growth is bounded by +k per tile even for an incompressible update
        assert after - before <= n_tiles * k
        expected = np.linalg.cholesky(sigma + u @ u.T)
        product = updated.to_dense() @ updated.to_dense().T
        np.testing.assert_allclose(product, expected @ expected.T, atol=1e-4)
        # ... and recompression reclaims rank the accuracy does not need:
        # an update far below the tolerance leaves the tile ranks unchanged
        tiny = update_factor(factor, 1e-9 * u)
        assert sum(t.rank for t in tiny.tlr.offdiag.values()) == before

    def test_pd_breaking_downdate_raises(self):
        n = 30
        sigma = _spd(8, n)
        chol = np.linalg.cholesky(sigma)
        factor = factorize(sigma, "tlr", tile_size=10, accuracy=1e-12)
        with pytest.raises(DowndateError):
            update_factor(factor, 1.5 * chol[:, 0], downdate=True)

    def test_unsupported_factor_type_rejected(self):
        with pytest.raises(TypeError, match="factor"):
            update_factor(object(), np.ones(4))


class TestModelUpdateLineage:
    """Model.update: lineage stamps, lazy covariance, cache accounting."""

    def _solver(self, **overrides):
        params = dict(method="dense", n_samples=400, tile_size=8)
        params.update(overrides)
        return MVNSolver(SolverConfig(**params))

    def test_child_answers_without_assembling_sigma(self):
        n = 24
        sigma = _spd(10, n)
        u = _update_matrix(10, n, 2)
        with self._solver() as solver:
            parent = solver.model(sigma)
            child = parent.update(u)
            # no covariance has been assembled for the child yet
            assert child._sigma_arr is None
            result = child.probability(np.full(n, -np.inf), np.ones(n), rng=0)
            assert child._sigma_arr is None  # the query used only the factor
            assert 0.0 < result.probability < 1.0
            # forcing assembly produces exactly Sigma + U U^T
            np.testing.assert_allclose(child.sigma, sigma + u @ u.T,
                                       rtol=0, atol=1e-12)

    def test_lineage_details_stamped_and_chained(self):
        n = 16
        sigma = _spd(11, n)
        u = _update_matrix(11, n, 3)
        with self._solver() as solver:
            parent = solver.model(sigma)
            child = parent.update(u)
            grandchild = child.update(u, downdate=True)

            expected_child_fp = lineage_fingerprint(parent.fingerprint, u)
            assert child.fingerprint == expected_child_fp
            assert grandchild.fingerprint == lineage_fingerprint(
                expected_child_fp, u, downdate=True)

            result = grandchild.probability(np.full(n, -np.inf), np.ones(n), rng=0)
            lineage = result.details["lineage"]
            assert lineage == {
                "parent": expected_child_fp,
                "fingerprint": grandchild.fingerprint,
                "rank": 3,
                "downdate": True,
                "depth": 2,
            }
            # the parent result carries no lineage stamp
            direct = parent.probability(np.full(n, -np.inf), np.ones(n), rng=0)
            assert "lineage" not in direct.details

    def test_cache_records_lineage_and_serves_children(self):
        n = 16
        sigma = _spd(12, n)
        u = _update_matrix(12, n, 2)
        cache = FactorCache(max_entries=4)
        with MVNSolver(SolverConfig(method="dense", n_samples=200, tile_size=8),
                       cache=cache) as solver:
            parent = solver.model(sigma)
            child = parent.update(u)
            assert cache.update_count == 1
            lineage = cache.lineage_of(child.fingerprint)
            assert isinstance(lineage, FactorLineage)
            assert lineage.parent_fingerprint == parent.fingerprint
            assert lineage.rank == 2 and lineage.depth == 1
            # the child factor is registered under its derived fingerprint
            assert cache.get_cached(child.fingerprint, tile_size=8) is not None

    def test_downdate_error_propagates_from_model(self):
        n = 12
        sigma = _spd(13, n)
        chol = np.linalg.cholesky(sigma)
        with self._solver() as solver:
            parent = solver.model(sigma)
            parent.factorize()
            with pytest.raises(DowndateError):
                parent.update(2.0 * chol[:, 0], downdate=True)
            # the parent still answers after the failed downdate
            result = parent.probability(np.full(n, -np.inf), np.ones(n), rng=0)
            assert np.isfinite(result.probability)

    def test_probe_inheritance_rules(self):
        from repro.query import QueryPlanner

        planner = QueryPlanner()  # max_rank_ratio = 0.45, so 42/96 is "tlr"
        probe = {"block": 96, "est_rank": 10, "rank_ratio": 10 / 96.0,
                 "accuracy": 1e-3}
        # a downdate can only lower ranks: the record survives unchanged
        assert planner.inherit_probe(probe, 4, True) == probe
        # an update bumps the estimate by its rank (still the same verdict)
        bumped = planner.inherit_probe(probe, 4, False)
        assert bumped["est_rank"] == 14
        assert bumped["rank_ratio"] == pytest.approx(14 / 96.0)
        # a bump that crosses the method-verdict boundary invalidates it
        near = {"block": 96, "est_rank": 42, "rank_ratio": 42 / 96.0,
                "accuracy": 1e-3}
        assert planner.inherit_probe(near, 8, False) is None
        assert planner.inherit_probe(None, 4, False) is None

    def test_update_inherits_probe_through_model(self):
        n = 24
        sigma = _spd(14, n)
        u = _update_matrix(14, n, 2)
        with self._solver(method="auto") as solver:
            parent = solver.model(sigma)
            # small models never probe; inject one to exercise the wiring
            parent._probe = {"block": 96, "est_rank": 10,
                            "rank_ratio": 10 / 96.0, "accuracy": 1e-3}
            downdated = parent.update(0.01 * u, downdate=True)
            assert downdated._probe == parent._probe
            updated = parent.update(u)
            assert updated._probe["est_rank"] == 12


class TestCrossEntryParity:
    """One updated model, four entry points, one bit pattern."""

    N = 20
    SAMPLES = 400

    def _problem(self):
        sigma = _spd(21, self.N)
        u = _update_matrix(21, self.N, 3)
        rng = np.random.default_rng(2)
        a = np.full(self.N, -np.inf)
        b = rng.uniform(0.5, 2.0, self.N)
        return sigma, u, a, b

    def test_entry_points_bit_identical(self):
        sigma, u, a, b = self._problem()
        config = SolverConfig(method="dense", n_samples=self.SAMPLES, tile_size=8)
        with MVNSolver(config) as solver:
            child = solver.model(sigma).update(u)
            via_probability = child.probability(a, b, rng=0)
            via_batch = child.probability_batch([(a, b)], rng=0)[0]
            via_functional = mvn_probability(
                a, b, sigma + u @ u.T, method="dense",
                n_samples=self.SAMPLES, tile_size=8, rng=0,
                factor=child.factor,
            )

        from repro.serve import QueryBroker, ServeConfig, SigmaUpdate

        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread"),
                         config) as broker:
            broker.submit(a, b, sigma, rng=0).result(timeout=60)
            via_serve = broker.submit(a, b, SigmaUpdate(sigma, u),
                                      rng=0).result(timeout=60)

        results = {
            "probability": via_probability,
            "batch": via_batch,
            "functional": via_functional,
            "serve": via_serve,
        }
        reference = via_probability
        for name, result in results.items():
            assert result.probability == reference.probability, name
            assert result.error == reference.error, name
            assert result.details["plan"]["method"] == "dense", name

        # lineage stamps agree wherever the entry point knows the lineage
        # (the functional call receives only the bare factor)
        lineage = via_probability.details["lineage"]
        assert via_batch.details["lineage"] == lineage
        assert via_serve.details["lineage"] == lineage
        assert via_serve.details["serve"]["lineage"]["warm"] is True

    def test_updated_model_matches_refactorization_to_tolerance(self):
        """Same sweep, same seed: only the factor differs (by ~1e-14), so
        the estimates agree to a few ulps — but not necessarily bitwise."""
        sigma, u, a, b = self._problem()
        config = SolverConfig(method="dense", n_samples=self.SAMPLES, tile_size=8)
        with MVNSolver(config) as solver:
            updated = solver.model(sigma).update(u).probability(a, b, rng=0)
            scratch = solver.model(sigma + u @ u.T).probability(a, b, rng=0)
        np.testing.assert_allclose(updated.probability, scratch.probability,
                                   rtol=1e-9)
        np.testing.assert_allclose(updated.error, scratch.error, rtol=1e-6)
