"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import ExponentialKernel, Geometry, MaternKernel, build_covariance


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_smoke: quick-mode checks of the performance benchmark plumbing "
        "(select with `pytest -m perf_smoke`)",
    )
    config.addinivalue_line(
        "markers",
        "docs: executable documentation — doc-snippet execution and doc-drift "
        "guards (select with `pytest -m docs`); part of the default tier-1 run",
    )
    config.addinivalue_line(
        "markers",
        "slow: stress and property tests with larger iteration counts "
        "(deselect with `pytest -m 'not slow'`); part of the default tier-1 run",
    )
    config.addinivalue_line(
        "markers",
        "timeout(seconds): advisory wall-clock bound for a test; enforced "
        "in-test via watchdog joins (pytest-timeout is not a dependency)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_spd(rng) -> np.ndarray:
    """A well-conditioned 8x8 SPD matrix."""
    a = rng.standard_normal((8, 8))
    return a @ a.T + 8.0 * np.eye(8)


@pytest.fixture
def medium_spd(rng) -> np.ndarray:
    """A 40x40 SPD covariance from an exponential kernel (realistic structure)."""
    geom = Geometry.regular_grid(8, 5)
    return build_covariance(ExponentialKernel(1.0, 0.2), geom.locations, nugget=1e-8)


@pytest.fixture
def grid_geometry() -> Geometry:
    return Geometry.regular_grid(6, 5)


@pytest.fixture
def exp_kernel() -> ExponentialKernel:
    return ExponentialKernel(sigma2=1.0, range_=0.2)


@pytest.fixture
def matern_kernel() -> MaternKernel:
    return MaternKernel(sigma2=1.0, range_=0.15, smoothness=1.5)
