"""Unit tests for the task runtime: handles, tasks, dependency graph."""

import numpy as np
import pytest

from repro.runtime import (
    READ,
    READWRITE,
    WRITE,
    DataHandle,
    Task,
    TaskGraph,
    TaskState,
)


class TestAccessMode:
    def test_read_flags(self):
        assert READ.reads and not READ.writes

    def test_write_flags(self):
        assert WRITE.writes and not WRITE.reads

    def test_readwrite_flags(self):
        assert READWRITE.reads and READWRITE.writes


class TestDataHandle:
    def test_get_set(self):
        h = DataHandle(np.zeros(3), name="x")
        h.set(np.ones(3))
        assert np.all(h.get() == 1.0)

    def test_unique_uids(self):
        handles = [DataHandle() for _ in range(10)]
        assert len({h.uid for h in handles}) == 10

    def test_default_name(self):
        h = DataHandle()
        assert h.name.startswith("handle")

    def test_equality_is_identity(self):
        a, b = DataHandle(1), DataHandle(1)
        assert a != b
        assert a == a
        assert len({a, b}) == 2


class TestTask:
    def test_execute_inplace_mutation(self):
        data = np.zeros(4)
        h = DataHandle(data)

        def body(x):
            x += 1.0

        task = Task(body, [(h, READWRITE)])
        task.execute()
        assert np.all(data == 1.0)

    def test_execute_return_value_replaces_payload(self):
        h = DataHandle(np.zeros(2))
        task = Task(lambda x: x + 5.0, [(h, READWRITE)])
        task.execute()
        assert np.all(h.get() == 5.0)

    def test_execute_multiple_written_handles(self):
        h1, h2 = DataHandle(1.0), DataHandle(2.0)
        task = Task(lambda a, b: (a + 10, b + 20), [(h1, READWRITE), (h2, READWRITE)])
        task.execute()
        assert h1.get() == 11.0 and h2.get() == 22.0

    def test_kwargs_passed(self):
        h = DataHandle(np.zeros(2))
        task = Task(lambda x, value: x + value, [(h, READWRITE)], kwargs={"value": 3.0})
        task.execute()
        assert np.all(h.get() == 3.0)

    def test_rejects_non_handle_access(self):
        with pytest.raises(TypeError):
            Task(lambda x: x, [(np.zeros(2), READ)])

    def test_rejects_non_accessmode(self):
        with pytest.raises(TypeError):
            Task(lambda x: x, [(DataHandle(), "R")])

    def test_initial_state_pending(self):
        assert Task(lambda: None).state == TaskState.PENDING


class TestTaskGraphDependencies:
    def _tasks(self, graph, accesses_list):
        out = []
        for accesses in accesses_list:
            out.append(graph.add_task(Task(lambda *a: None, accesses)))
        return out

    def test_read_after_write(self):
        g = TaskGraph()
        h = DataHandle()
        writer, reader = self._tasks(g, [[(h, WRITE)], [(h, READ)]])
        assert writer in g.predecessors[reader]

    def test_write_after_write(self):
        g = TaskGraph()
        h = DataHandle()
        w1, w2 = self._tasks(g, [[(h, WRITE)], [(h, WRITE)]])
        assert w1 in g.predecessors[w2]

    def test_write_after_read(self):
        g = TaskGraph()
        h = DataHandle()
        w0, r1, w2 = self._tasks(g, [[(h, WRITE)], [(h, READ)], [(h, WRITE)]])
        assert r1 in g.predecessors[w2]
        assert w0 in g.predecessors[r1]

    def test_independent_readers_not_ordered(self):
        g = TaskGraph()
        h = DataHandle()
        w, r1, r2 = self._tasks(g, [[(h, WRITE)], [(h, READ)], [(h, READ)]])
        assert r1 not in g.predecessors[r2]
        assert r2 not in g.predecessors[r1]

    def test_distinct_handles_independent(self):
        g = TaskGraph()
        h1, h2 = DataHandle(), DataHandle()
        t1, t2 = self._tasks(g, [[(h1, WRITE)], [(h2, WRITE)]])
        assert not g.predecessors[t2]

    def test_topological_order_respects_deps(self):
        g = TaskGraph()
        h = DataHandle()
        tasks = self._tasks(g, [[(h, WRITE)], [(h, READWRITE)], [(h, READ)]])
        order = g.topological_order()
        positions = {t: i for i, t in enumerate(order)}
        assert positions[tasks[0]] < positions[tasks[1]] < positions[tasks[2]]

    def test_roots(self):
        g = TaskGraph()
        h = DataHandle()
        tasks = self._tasks(g, [[(h, WRITE)], [(h, READ)]])
        assert g.roots() == [tasks[0]]

    def test_cycle_detection_via_explicit_edges(self):
        g = TaskGraph()
        t1 = g.add_task(Task(lambda: None))
        t2 = g.add_task(Task(lambda: None))
        g.add_dependency(t1, t2)
        g.add_dependency(t2, t1)
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_critical_path_and_total_work(self):
        g = TaskGraph()
        h = DataHandle()
        self._tasks(g, [[(h, WRITE)], [(h, READWRITE)], [(h, READWRITE)]])
        assert g.critical_path_length() == pytest.approx(3.0)
        assert g.total_work() == pytest.approx(3.0)

    def test_validate_passes_for_consistent_graph(self):
        g = TaskGraph()
        h = DataHandle()
        self._tasks(g, [[(h, WRITE)], [(h, READ)]])
        g.validate()
