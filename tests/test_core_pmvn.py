"""Tests for the core PMVN machinery: QMC kernel, factor adapters, the sweep."""

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.core import (
    DenseTileFactor,
    PMVNOptions,
    TLRFactor,
    factorize,
    mvn_probability,
    pmvn_dense,
    pmvn_integrate,
    pmvn_tlr,
    qmc_kernel_tile,
)
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.mvn import mvn_sov_vectorized
from repro.runtime import Runtime
from repro.stats.qmc import qmc_samples
from repro.utils.timers import TimingRegistry


@pytest.fixture
def spd20(rng):
    geom = Geometry.regular_grid(5, 4)
    return build_covariance(ExponentialKernel(1.0, 0.3), geom.locations, nugget=1e-8)


def scipy_ref(sigma, a, b, mean=None):
    """Reference probability via scipy (CDF differences for small dims)."""
    n = sigma.shape[0]
    mean = np.zeros(n) if mean is None else mean
    mvn = multivariate_normal(mean=mean, cov=sigma, allow_singular=False)
    if np.all(np.isneginf(a)):
        return mvn.cdf(b)
    # inclusion-exclusion is exponential; only used for tiny n in tests
    raise NotImplementedError


class TestQMCKernelTile:
    def test_single_tile_matches_vectorized_sov(self, small_spd):
        """One tile covering the whole problem must reproduce the SOV recursion."""
        n = small_spd.shape[0]
        n_chains = 400
        factor = np.linalg.cholesky(small_spd)
        r_tile = qmc_samples(n, n_chains, method="richtmyer", rng=3)
        b = np.full(n, 0.8)
        a = np.full(n, -np.inf)
        a_tile = np.repeat(a[:, None], n_chains, axis=1)
        b_tile = np.repeat(b[:, None], n_chains, axis=1)
        p_seg = np.ones(n_chains)
        y_tile = np.zeros((n, n_chains))
        qmc_kernel_tile(factor, r_tile, a_tile, b_tile, p_seg, y_tile)

        ref = mvn_sov_vectorized(a, b, small_spd, n_samples=n_chains, rng=3)
        assert p_seg.mean() == pytest.approx(ref.probability, rel=1e-10)

    def test_prefix_accumulation(self, small_spd):
        n = small_spd.shape[0]
        n_chains = 200
        factor = np.linalg.cholesky(small_spd)
        r_tile = qmc_samples(n, n_chains, rng=0)
        a_tile = np.full((n, n_chains), -1.0)
        b_tile = np.full((n, n_chains), 1.0)
        p_seg = np.ones(n_chains)
        y_tile = np.zeros((n, n_chains))
        prefix = np.zeros(n)
        qmc_kernel_tile(factor, r_tile, a_tile, b_tile, p_seg, y_tile, prefix_sum=prefix)
        # last prefix entry equals the final probability sum, prefixes decrease
        assert prefix[-1] == pytest.approx(p_seg.sum())
        assert np.all(np.diff(prefix) <= 1e-12)

    def test_shape_validation(self, small_spd):
        factor = np.linalg.cholesky(small_spd)
        with pytest.raises(ValueError):
            qmc_kernel_tile(factor, np.zeros((8, 4)), np.zeros((8, 5)), np.zeros((8, 4)), np.ones(4), np.zeros((8, 4)))
        with pytest.raises(ValueError):
            qmc_kernel_tile(factor[:, :5], np.zeros((8, 4)), np.zeros((8, 4)), np.zeros((8, 4)), np.ones(4), np.zeros((8, 4)))

    def test_nonpositive_diagonal_rejected(self):
        bad = np.eye(3)
        bad[1, 1] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            qmc_kernel_tile(bad, np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((3, 2)), np.ones(2), np.zeros((3, 2)))


class TestFactorAdapters:
    def test_dense_factor_roundtrip(self, spd20):
        factor = factorize(spd20, method="dense", tile_size=7)
        assert isinstance(factor, DenseTileFactor)
        np.testing.assert_allclose(factor.to_dense(), np.linalg.cholesky(spd20), atol=1e-9)
        assert factor.n == spd20.shape[0]
        assert factor.n_blocks == 3

    def test_tlr_factor_roundtrip(self, spd20):
        factor = factorize(spd20, method="tlr", tile_size=7, accuracy=1e-10)
        assert isinstance(factor, TLRFactor)
        np.testing.assert_allclose(factor.to_dense(), np.linalg.cholesky(spd20), atol=1e-6)

    def test_apply_offdiag_dense(self, spd20, rng):
        factor = factorize(spd20, method="dense", tile_size=7)
        y = rng.standard_normal((7, 5))
        expected = np.linalg.cholesky(spd20)[7:14, 0:7] @ y
        np.testing.assert_allclose(factor.apply_offdiag(1, 0, y), expected, atol=1e-9)

    def test_apply_offdiag_tlr_close_to_dense(self, spd20, rng):
        dense = factorize(spd20, method="dense", tile_size=7)
        tlr = factorize(spd20, method="tlr", tile_size=7, accuracy=1e-8)
        y = rng.standard_normal((7, 4))
        np.testing.assert_allclose(tlr.apply_offdiag(2, 0, y), dense.apply_offdiag(2, 0, y), atol=1e-5)

    def test_apply_offdiag_rejects_upper(self, spd20, rng):
        factor = factorize(spd20, method="dense", tile_size=7)
        with pytest.raises(ValueError):
            factor.apply_offdiag(0, 1, rng.standard_normal((7, 2)))

    def test_unknown_method(self, spd20):
        with pytest.raises(ValueError):
            factorize(spd20, method="hodlr")

    def test_default_tile_size_heuristic(self, spd20):
        factor = factorize(spd20)
        assert 1 <= factor.tile_size <= spd20.shape[0]

    def test_timings_populated(self, spd20):
        reg = TimingRegistry()
        factorize(spd20, method="dense", tile_size=10, timings=reg)
        assert reg.count("factorization") == 1


class TestPMVNIntegration:
    def test_matches_scipy_cdf(self, rng):
        a_mat = rng.standard_normal((10, 10))
        sigma = a_mat @ a_mat.T + 10 * np.eye(10)
        b = rng.standard_normal(10) * 1.5
        ref = scipy_ref(sigma, np.full(10, -np.inf), b)
        res = pmvn_dense(np.full(10, -np.inf), b, sigma, n_samples=4000, tile_size=3, rng=0)
        assert res.probability == pytest.approx(ref, abs=5e-3)

    def test_matches_vectorized_sov_exactly_single_row_block(self, spd20):
        """With one row block the tiled sweep is the vectorized SOV."""
        n = spd20.shape[0]
        b = np.full(n, 0.5)
        a = np.full(n, -np.inf)
        res_tile = pmvn_dense(a, b, spd20, n_samples=1000, tile_size=n, rng=5)
        res_ref = mvn_sov_vectorized(a, b, spd20, n_samples=1000, rng=5)
        assert res_tile.probability == pytest.approx(res_ref.probability, rel=1e-10)

    @pytest.mark.parametrize("tile_size", [4, 7, 11])
    def test_tile_size_invariance(self, spd20, tile_size):
        """The estimate must not depend on the tiling (same QMC stream)."""
        n = spd20.shape[0]
        a, b = np.full(n, -np.inf), np.full(n, 0.4)
        res = pmvn_dense(a, b, spd20, n_samples=2000, tile_size=tile_size, rng=9)
        ref = pmvn_dense(a, b, spd20, n_samples=2000, tile_size=n, rng=9)
        assert res.probability == pytest.approx(ref.probability, rel=1e-9)

    def test_chain_block_invariance(self, spd20):
        n = spd20.shape[0]
        a, b = np.full(n, -1.0), np.full(n, 1.0)
        res1 = pmvn_dense(a, b, spd20, n_samples=1200, tile_size=7, chain_block=1200, rng=2)
        res2 = pmvn_dense(a, b, spd20, n_samples=1200, tile_size=7, chain_block=100, rng=2)
        assert res1.probability == pytest.approx(res2.probability, rel=1e-9)

    def test_parallel_runtime_matches_serial(self, spd20):
        n = spd20.shape[0]
        a, b = np.full(n, -np.inf), np.full(n, 0.3)
        serial = pmvn_dense(a, b, spd20, n_samples=1500, tile_size=5, rng=4)
        parallel = pmvn_dense(a, b, spd20, n_samples=1500, tile_size=5, rng=4, runtime=Runtime(n_workers=4))
        assert parallel.probability == pytest.approx(serial.probability, rel=1e-9)

    def test_tlr_close_to_dense(self, spd20):
        n = spd20.shape[0]
        a, b = np.full(n, -np.inf), np.full(n, 0.3)
        dense = pmvn_dense(a, b, spd20, n_samples=2000, tile_size=5, rng=1)
        tlr = pmvn_tlr(a, b, spd20, n_samples=2000, tile_size=5, accuracy=1e-6, rng=1)
        assert tlr.probability == pytest.approx(dense.probability, abs=1e-4)

    def test_tlr_loose_accuracy_small_bias(self, spd20):
        """The paper's claim: accuracy 1e-3 keeps probability differences below ~1e-3."""
        n = spd20.shape[0]
        a, b = np.full(n, -np.inf), np.full(n, 0.3)
        dense = pmvn_dense(a, b, spd20, n_samples=4000, tile_size=5, rng=1)
        tlr = pmvn_tlr(a, b, spd20, n_samples=4000, tile_size=5, accuracy=1e-3, rng=1)
        assert abs(tlr.probability - dense.probability) < 2e-3

    def test_mean_absorbed(self, rng):
        a_mat = rng.standard_normal((6, 6))
        sigma = a_mat @ a_mat.T + 6 * np.eye(6)
        mean = rng.standard_normal(6)
        b = mean + 1.0
        ref = multivariate_normal(mean=mean, cov=sigma).cdf(b)
        res = pmvn_dense(np.full(6, -np.inf), b, sigma, n_samples=4000, tile_size=3, mean=mean, rng=0)
        assert res.probability == pytest.approx(ref, abs=5e-3)

    def test_prefix_probabilities_monotone_and_match_final(self, spd20):
        n = spd20.shape[0]
        factor = factorize(spd20, method="dense", tile_size=6)
        options = PMVNOptions(n_samples=1500, rng=0, return_prefix=True)
        res = pmvn_integrate(np.full(n, -0.5), np.full(n, np.inf), factor, options)
        prefix = res.details["prefix_probabilities"]
        assert prefix.shape == (n,)
        assert np.all(np.diff(prefix) <= 1e-12)
        assert prefix[-1] == pytest.approx(res.probability, rel=1e-10)
        assert np.all(res.details["prefix_errors"] >= 0.0)

    def test_result_metadata(self, spd20):
        n = spd20.shape[0]
        res = pmvn_tlr(np.full(n, -np.inf), np.full(n, 0.0), spd20, n_samples=500, tile_size=5, accuracy=1e-2, rng=0)
        assert res.method == "pmvn-tlr"
        assert res.details["tlr_accuracy"] == 1e-2
        assert res.dimension == n
        assert res.n_samples == 500

    def test_invalid_limits_rejected(self, spd20):
        n = spd20.shape[0]
        factor = factorize(spd20, tile_size=6)
        with pytest.raises(ValueError):
            pmvn_integrate(np.full(n, 1.0), np.full(n, -1.0), factor)

    def test_timings_record_phases(self, spd20):
        reg = TimingRegistry()
        n = spd20.shape[0]
        pmvn_dense(np.full(n, -np.inf), np.full(n, 0.0), spd20, n_samples=500, tile_size=6, timings=reg, rng=0)
        for region in ("factorization", "integration", "qmc_generation"):
            assert reg.count(region) >= 1


class TestTopLevelAPI:
    @pytest.mark.parametrize("method", ["mc", "sov", "sov-seq", "dense", "tlr"])
    def test_all_methods_consistent(self, method, rng):
        a_mat = rng.standard_normal((6, 6))
        sigma = a_mat @ a_mat.T + 6 * np.eye(6)
        b = np.full(6, 1.0)
        ref = multivariate_normal(cov=sigma).cdf(b)
        n_samples = 60_000 if method == "mc" else 3000
        res = mvn_probability(np.full(6, -np.inf), b, sigma, method=method, n_samples=n_samples, tile_size=3, rng=0)
        assert res.probability == pytest.approx(ref, abs=1.5e-2 if method == "mc" else 5e-3)

    def test_unknown_method(self, small_spd):
        with pytest.raises(ValueError):
            mvn_probability(np.zeros(8), np.ones(8), small_spd, method="quadrature")

    def test_n_workers_spawns_runtime(self, spd20):
        n = spd20.shape[0]
        res = mvn_probability(
            np.full(n, -np.inf), np.full(n, 0.2), spd20, method="dense", n_samples=800, n_workers=3, tile_size=5, rng=0
        )
        ref = mvn_probability(
            np.full(n, -np.inf), np.full(n, 0.2), spd20, method="dense", n_samples=800, n_workers=1, tile_size=5, rng=0
        )
        assert res.probability == pytest.approx(ref.probability, rel=1e-9)
