"""Tests for the declarative query layer (repro.query).

Five concerns:

* **validation** — NaN limits, inverted boxes and shape mismatches are
  rejected with one uniform ``ValueError`` at the query boundary, through
  every entry point (functional, solver, batched, serving),
* **planning** — the ``method="auto"`` decision rule (size thresholds +
  structure probe) is deterministic, sidedness-invariant, and bit-identical
  to explicitly requesting the chosen method on dense and TLR fixtures,
* **adaptive accuracy** — ``target_error`` escalates the sample count until
  the standard error meets the target (or flags budget exhaustion cleanly),
  identically through all entry points for integer seeds,
* **observability** — every result carries ``details["plan"]``, and plans
  survive batch and serve round-trips,
* **serialization** — ``MVNResult.to_dict``/``from_dict`` round-trip through
  JSON, including nested ``details`` trees and numpy arrays.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    MVNQuery,
    MVNResult,
    MVNSolver,
    QueryBroker,
    QueryPlanner,
    ServeConfig,
    SolverConfig,
    mvn_probability,
    mvn_probability_batch,
    plan_query,
)
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.query import DEFAULT_BUDGET_MULTIPLIER, next_sample_count


@pytest.fixture
def sigma25() -> np.ndarray:
    geom = Geometry.regular_grid(5, 5)
    return build_covariance(ExponentialKernel(1.0, 0.4), geom.locations, nugget=1e-6)


@pytest.fixture
def smooth36() -> np.ndarray:
    """A smooth (long-range) field: low-rank off-diagonal structure."""
    geom = Geometry.regular_grid(6, 6)
    return build_covariance(ExponentialKernel(1.0, 0.5), geom.locations, nugget=1e-4)


def _box(n: int) -> tuple[np.ndarray, np.ndarray]:
    return np.full(n, -np.inf), np.linspace(0.4, 1.6, n)


#: a planner with tiny thresholds so small test fixtures exercise the
#: mid-size and TLR branches of the decision rule (the relaxed rank ratio
#: compensates for the coarse 8x8 probe of these miniature covariances)
TINY_PLANNER = QueryPlanner(dense_max_n=8, tlr_min_n=16, probe_size=8,
                            max_rank_ratio=0.9)


class TestMVNQueryValidation:
    def test_rejects_nan_limits(self):
        with pytest.raises(ValueError, match="must not contain NaN"):
            MVNQuery([0.0, np.nan], [1.0, 1.0])

    def test_rejects_inverted_box(self):
        with pytest.raises(ValueError, match="lower limit exceeds upper limit"):
            MVNQuery([0.5], [-0.5])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            MVNQuery([0.0, 0.0], [1.0])

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError, match="mean"):
            MVNQuery([0.0, 0.0], [1.0, 1.0], mean=[1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="finite"):
            MVNQuery([0.0, 0.0], [1.0, 1.0], mean=np.nan)

    def test_rejects_bad_sampling_contract(self):
        with pytest.raises(ValueError, match="n_samples"):
            MVNQuery([0.0], [1.0], n_samples=0)
        with pytest.raises(ValueError, match="target_error"):
            MVNQuery([0.0], [1.0], target_error=0.0)
        with pytest.raises(ValueError, match="max_samples"):
            MVNQuery([0.0], [1.0], n_samples=100, max_samples=50)

    def test_derived_properties(self):
        q = MVNQuery([-np.inf, 0.0], [1.0, np.inf], tag={"cell": 3})
        assert q.n == 2
        assert q.one_sided_fraction == 0.5
        assert not q.wants_adaptive
        assert q.tag == {"cell": 3}
        assert MVNQuery([0.0], [1.0], target_error=1e-3).wants_adaptive

    def test_frozen(self):
        q = MVNQuery([0.0], [1.0])
        with pytest.raises(AttributeError):
            q.n_samples = 7

    def test_uniform_rejection_across_entry_points(self, sigma25):
        """Every entry point raises the same ValueError for a bad box."""
        n = sigma25.shape[0]
        a = np.zeros(n)
        b = np.ones(n)
        a_bad = a.copy()
        a_bad[3] = 2.0  # exceeds b[3] = 1.0
        expected = "lower limit exceeds upper limit at index 3"

        with pytest.raises(ValueError, match=expected):
            mvn_probability(a_bad, b, sigma25, method="sov", n_samples=50)
        with MVNSolver(SolverConfig(method="dense", n_samples=50)) as solver:
            model = solver.model(sigma25)
            with pytest.raises(ValueError, match=expected):
                model.probability(a_bad, b)
        with pytest.raises(ValueError, match=expected):
            mvn_probability_batch([(a, b), (a_bad, b)], sigma25, n_samples=50)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread"),
                         SolverConfig(method="dense", n_samples=50)) as broker:
            with pytest.raises(ValueError, match=expected):
                broker.submit(a_bad, b, sigma25)
            with pytest.raises(ValueError, match="must not contain NaN"):
                broker.submit(np.full(n, np.nan), b, sigma25)


class TestBatchBoundary:
    def test_batch_validates_before_factorizing(self, sigma25):
        """A bad box must be rejected before any factorization is paid."""
        n = sigma25.shape[0]
        a = np.zeros(n)
        b = np.full(n, -1.0)  # inverted everywhere
        with MVNSolver(SolverConfig(method="dense", n_samples=50)) as solver:
            model = solver.model(sigma25)
            with pytest.raises(ValueError, match="lower limit exceeds upper limit"):
                model.probability_batch([(a, np.ones(n)), (a, b)])
            assert model.factor is None
            assert solver.cache.factorize_count == 0
        with MVNSolver(SolverConfig(method="dense", n_samples=50)) as solver:
            with pytest.raises(ValueError, match="box 1 must be an"):
                solver.model(sigma25).probability_batch([(a, np.ones(n)), a])

    def test_batch_rejects_undersized_budget_like_single(self, sigma25):
        """max_samples < n_samples raises the same error on both paths."""
        n = sigma25.shape[0]
        a, b = _box(n)
        expected = r"max_samples \(50\) must be >= the initial n_samples \(100\)"
        with MVNSolver(SolverConfig(method="dense")) as solver:
            model = solver.model(sigma25)
            with pytest.raises(ValueError, match=expected):
                model.probability(a, b, n_samples=100, target_error=1e-9, max_samples=50)
            with pytest.raises(ValueError, match=expected):
                model.probability_batch([(a, b)], n_samples=100,
                                        target_error=1e-9, max_samples=50)


class TestPlanner:
    def test_small_n_plans_dense(self, sigma25):
        plan = plan_query(sigma25, SolverConfig(method="auto", n_samples=200))
        assert plan.method == "dense"
        assert plan.auto
        assert plan.backend is not None
        assert "dense_max_n" in plan.reason

    def test_midsize_compressible_plans_dense(self, sigma25):
        planner = QueryPlanner(dense_max_n=8, tlr_min_n=64, probe_size=8,
                               max_rank_ratio=0.9)
        plan = planner.plan(sigma25, SolverConfig(method="auto", n_samples=200))
        assert plan.method == "dense"
        assert "tlr_min_n" in plan.reason

    def test_large_lowrank_plans_tlr(self, smooth36):
        plan = TINY_PLANNER.plan(smooth36, SolverConfig(method="auto", n_samples=200))
        assert plan.method == "tlr"
        assert plan.probe is not None
        assert plan.probe["rank_ratio"] <= TINY_PLANNER.max_rank_ratio
        assert plan.costs  # both candidates modelled

    def test_incompressible_plans_dense(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((30, 30))
        noisy = a @ a.T + 30.0 * np.eye(30)  # no off-diagonal decay
        plan = TINY_PLANNER.plan(noisy, SolverConfig(method="auto"))
        assert plan.method == "dense"
        assert "barely compressible" in plan.reason

    def test_explicit_method_passes_through(self, sigma25):
        plan = plan_query(sigma25, SolverConfig(method="sov", n_samples=100))
        assert plan.method == "sov"
        assert not plan.auto
        assert plan.backend is None  # baselines have no tile kernel

    def test_sidedness_never_flips_the_choice(self, smooth36):
        config = SolverConfig(method="auto", n_samples=200)
        one_sided = TINY_PLANNER.plan(smooth36, config, one_sided_fraction=0.5)
        two_sided = TINY_PLANNER.plan(smooth36, config, one_sided_fraction=0.0)
        assert one_sided.method == two_sided.method
        # ... although it does discount the modelled kernel phase
        assert one_sided.costs["dense"]["kernel"] < two_sided.costs["dense"]["kernel"]

    def test_plan_describe_renders(self, smooth36):
        plan = TINY_PLANNER.plan(
            smooth36, SolverConfig(method="auto", n_samples=300), target_error=1e-3
        )
        text = plan.describe()
        assert "method           : tlr" in text
        assert "target error     : 0.001" in text
        assert "structure probe" in text
        assert "cost estimates" in text

    def test_adaptive_defaults(self, sigma25):
        config = SolverConfig(method="dense", n_samples=250)
        plan = plan_query(sigma25, config, target_error=1e-3)
        assert plan.max_samples == DEFAULT_BUDGET_MULTIPLIER * 250
        plan = plan_query(sigma25, config, target_error=1e-3, max_samples=4000)
        assert plan.max_samples == 4000
        assert plan_query(sigma25, config).max_samples == 250  # no target: one round

    def test_next_sample_count_schedule(self):
        # grows by at least 2x, follows MC scaling with safety margin
        assert next_sample_count(100, 4e-3, 2e-3, 10_000) == 480
        assert next_sample_count(100, 2.1e-3, 2e-3, 10_000) == 200
        # clamps to the budget, stops when nothing is left
        assert next_sample_count(100, 4e-3, 2e-3, 300) == 300
        assert next_sample_count(300, 4e-3, 2e-3, 300) is None
        # target already met
        assert next_sample_count(100, 1e-3, 2e-3, 10_000) is None

    def test_model_plan_is_memoized_and_deterministic(self, smooth36):
        config = SolverConfig(method="auto", n_samples=200)
        with MVNSolver(config, planner=TINY_PLANNER) as solver:
            model = solver.model(smooth36)
            first = model.plan()
            second = model.plan()
            assert first.method == second.method == "tlr"
            assert first.probe is second.probe  # probe ran once


class TestAutoParity:
    def test_auto_matches_dense_on_small_fixture(self, sigma25):
        n = sigma25.shape[0]
        a, b = _box(n)
        explicit = mvn_probability(a, b, sigma25, method="dense", n_samples=300, rng=11)
        auto = mvn_probability(a, b, sigma25, method="auto", n_samples=300, rng=11)
        assert auto.probability == explicit.probability
        assert auto.error == explicit.error
        assert auto.method == explicit.method == "pmvn-dense"
        assert auto.details["plan"]["method"] == "dense"
        assert auto.details["plan"]["auto"] is True
        assert explicit.details["plan"]["auto"] is False

    def test_auto_matches_tlr_on_lowrank_fixture(self, smooth36):
        n = smooth36.shape[0]
        a, b = _box(n)
        explicit = mvn_probability(a, b, smooth36, method="tlr", n_samples=300, rng=11)
        with MVNSolver(SolverConfig(method="auto", n_samples=300),
                       planner=TINY_PLANNER) as solver:
            auto = solver.model(smooth36).probability(a, b, rng=11)
        assert auto.details["plan"]["method"] == "tlr"
        assert auto.probability == explicit.probability
        assert auto.error == explicit.error
        assert auto.method == "pmvn-tlr"

    def test_auto_batch_matches_explicit_batch(self, sigma25):
        n = sigma25.shape[0]
        rng = np.random.default_rng(5)
        boxes = [(np.full(n, -np.inf), rng.uniform(0.3, 2.0, n)) for _ in range(3)]
        explicit = mvn_probability_batch(boxes, sigma25, method="dense", n_samples=200, rng=3)
        auto = mvn_probability_batch(boxes, sigma25, method="auto", n_samples=200, rng=3)
        for e_res, a_res in zip(explicit, auto):
            assert a_res.probability == e_res.probability
            assert a_res.error == e_res.error
            assert a_res.details["plan"]["method"] == "dense"

    def test_auto_confidence_region(self, sigma25):
        n = sigma25.shape[0]
        mean = np.linspace(-0.5, 1.0, n)
        with MVNSolver(SolverConfig(method="auto", n_samples=150)) as solver:
            result = solver.model(sigma25, mean=mean).confidence_region(0.4, rng=7)
        with MVNSolver(SolverConfig(method="dense", n_samples=150)) as solver:
            explicit = solver.model(sigma25, mean=mean).confidence_region(0.4, rng=7)
        np.testing.assert_array_equal(result.confidence_function, explicit.confidence_function)

    def test_auto_honours_prebound_factor(self, smooth36):
        from repro import factorize

        factor = factorize(smooth36, method="tlr")
        with MVNSolver(SolverConfig(method="auto", n_samples=150)) as solver:
            model = solver.model(smooth36, factor=factor)
            plan = model.plan()
            assert plan.method == "tlr"
            assert "pre-bound" in plan.reason
            result = model.probability(*_box(smooth36.shape[0]), rng=2)
        assert result.method == "pmvn-tlr"
        assert solver.cache.factorize_count == 0

    def test_auto_model_can_hold_both_factors(self, smooth36):
        """A query-driven method flip factorizes per method, not per query."""
        with MVNSolver(SolverConfig(method="auto", n_samples=100),
                       planner=TINY_PLANNER) as solver:
            model = solver.model(smooth36)
            model.probability(*_box(smooth36.shape[0]), rng=0)  # plans tlr
            assert set(model._factors) == {"tlr"}
            assert model.plan().method == "tlr"


class TestAdaptiveAccuracy:
    def test_target_met_with_escalation(self, sigma25):
        n = sigma25.shape[0]
        a, b = _box(n)
        loose = mvn_probability(a, b, sigma25, method="dense", n_samples=100, rng=9)
        target = loose.error / 4.0  # unreachable at N=100, reachable after escalation
        result = mvn_probability(
            a, b, sigma25, method="dense", n_samples=100, rng=9, target_error=target
        )
        plan = result.details["plan"]
        assert result.error <= target
        assert plan["target_met"] is True
        assert plan["rounds"] >= 2
        assert plan["samples_used"] > result.n_samples >= 100
        assert plan["target_error"] == target

    def test_budget_exhaustion_flags_cleanly(self, sigma25):
        n = sigma25.shape[0]
        a, b = _box(n)
        result = mvn_probability(
            a, b, sigma25, method="dense", n_samples=100, rng=9,
            target_error=1e-9, max_samples=400,
        )
        plan = result.details["plan"]
        assert result.error > 1e-9
        assert plan["target_met"] is False
        assert plan["rounds"] == 2  # 100 then the 400 budget cap
        assert plan["samples_used"] == 500
        assert result.n_samples == 400

    def test_single_and_batch_escalate_identically(self, sigma25):
        n = sigma25.shape[0]
        a, b = _box(n)
        single = mvn_probability(
            a, b, sigma25, method="dense", n_samples=100, rng=9, target_error=2e-3
        )
        batched = mvn_probability_batch(
            [(a, b), (a, b - 0.2)], sigma25, method="dense", n_samples=100,
            rng=9, target_error=2e-3,
        )
        assert batched[0].probability == single.probability
        assert batched[0].error == single.error
        assert batched[0].details["plan"]["rounds"] == single.details["plan"]["rounds"]
        for result in batched:
            assert result.error <= 2e-3
            assert result.details["plan"]["target_met"] is True

    def test_adaptive_works_for_baselines(self, sigma25):
        n = sigma25.shape[0]
        a, b = _box(n)
        result = mvn_probability(
            a, b, sigma25, method="sov", n_samples=100, rng=4, target_error=2e-3
        )
        assert result.error <= 2e-3
        assert result.details["plan"]["method"] == "sov"


class TestServeQueries:
    @pytest.fixture
    def broker(self):
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread", batch_window=0.01),
                         SolverConfig(method="dense", n_samples=200)) as broker:
            yield broker

    def test_submit_query_object(self, sigma25, broker):
        n = sigma25.shape[0]
        a, b = _box(n)
        query = MVNQuery(a, b, rng=3, tag="q1")
        served = broker.submit(query, sigma25).result()
        classic = broker.submit(a, b, sigma25, rng=3).result()
        assert served.probability == classic.probability
        assert served.details["plan"]["method"] == "dense"

    def test_submit_async_accepts_query_objects(self, sigma25, broker):
        import asyncio

        n = sigma25.shape[0]
        a, b = _box(n)

        async def run():
            served = await broker.submit_async(MVNQuery(a, b, rng=3), sigma25)
            classic = await broker.submit_async(a, b, sigma25, rng=3)
            return served, classic

        served, classic = asyncio.run(run())
        assert served.probability == classic.probability

    def test_submit_query_rejects_duplicate_overrides(self, sigma25, broker):
        query = MVNQuery(*_box(sigma25.shape[0]), rng=3)
        with pytest.raises(TypeError, match="duplicate keyword"):
            broker.submit(query, sigma25, n_samples=50)

    def test_adaptive_through_serve_matches_direct(self, sigma25, broker):
        n = sigma25.shape[0]
        a, b = _box(n)
        query = MVNQuery(a, b, rng=9, n_samples=100, target_error=2e-3)
        served = broker.submit(query, sigma25).result()
        with MVNSolver(SolverConfig(method="dense", n_samples=200)) as solver:
            direct = solver.model(sigma25).probability(
                a, b, rng=9, n_samples=100, target_error=2e-3
            )
        assert served.probability == direct.probability
        assert served.error == direct.error
        assert served.error <= 2e-3
        assert served.details["plan"] == direct.details["plan"]
        assert served.details["serve"]["shard"] == 0

    def test_auto_with_target_through_serve(self, sigma25):
        """method='auto' + target_error: served == direct, plan recorded."""
        n = sigma25.shape[0]
        a, b = _box(n)
        config = SolverConfig(method="auto", n_samples=100)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread", batch_window=0.01),
                         config) as broker:
            served = broker.submit(
                MVNQuery(a, b, rng=9, target_error=2e-3), sigma25
            ).result()
        with MVNSolver(config) as solver:
            direct = solver.model(sigma25).probability(a, b, rng=9, target_error=2e-3)
        assert served.probability == direct.probability
        assert served.error == direct.error <= 2e-3
        assert served.details["plan"]["auto"] is True
        assert served.details["plan"]["method"] == "dense"
        assert served.details["plan"] == direct.details["plan"]

    def test_plan_contract_splits_batches(self, sigma25):
        """Requests with different accuracy contracts must not share a sweep."""
        n = sigma25.shape[0]
        a, b = _box(n)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="thread", batch_window=0.25),
                         SolverConfig(method="dense", n_samples=200)) as broker:
            plain = broker.submit(a, b, sigma25, rng=3)
            strict = broker.submit(MVNQuery(a, b, rng=3, target_error=5e-3), sigma25)
            plain.result(), strict.result()
            assert broker.stats().batches == 2

    def test_process_shards_ship_json_safe_results(self, sigma25):
        """The multiprocessing shard path round-trips results via to_dict."""
        n = sigma25.shape[0]
        a, b = _box(n)
        with QueryBroker(ServeConfig(n_shards=1, worker_mode="process", batch_window=0.01),
                         SolverConfig(method="dense", n_samples=150)) as broker:
            served = broker.submit(a, b, sigma25, rng=5).result(timeout=120)
        with MVNSolver(SolverConfig(method="dense", n_samples=150)) as solver:
            direct = solver.model(sigma25).probability(a, b, rng=5)
        assert served.probability == direct.probability
        assert served.error == direct.error
        assert served.details["plan"] == direct.details["plan"]
        assert served.details["serve"]["batch_size"] == 1


class TestResultSerialization:
    def test_round_trip_through_json(self):
        result = MVNResult(
            0.42, 3e-3, 800, 25, method="pmvn-dense",
            details={
                "plan": {"method": "dense", "rounds": 2, "target_met": True},
                "serve": {"shard": 1, "batch_size": 4},
                "prefix_probabilities": np.array([0.9, 0.6, 0.42]),
                "tile_size": np.int64(8),
            },
        )
        payload = json.loads(json.dumps(result.to_dict()))
        restored = MVNResult.from_dict(payload)
        assert restored.probability == result.probability
        assert restored.error == result.error
        assert restored.n_samples == result.n_samples
        assert restored.dimension == result.dimension
        assert restored.method == result.method
        assert restored.details["plan"] == result.details["plan"]
        assert restored.details["serve"] == result.details["serve"]
        np.testing.assert_array_equal(
            restored.details["prefix_probabilities"],
            result.details["prefix_probabilities"],
        )
        assert isinstance(restored.details["prefix_probabilities"], np.ndarray)
        assert restored.details["tile_size"] == 8

    def test_exotic_details_fall_back_to_repr(self):
        result = MVNResult(0.1, 1e-3, 10, 2, details={"tag": object()})
        payload = result.to_dict()
        json.dumps(payload)  # must not raise
        assert isinstance(payload["details"]["tag"], str)

    def test_real_result_round_trips(self, sigma25):
        a, b = _box(sigma25.shape[0])
        result = mvn_probability(a, b, sigma25, method="dense", n_samples=150, rng=1)
        restored = MVNResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.probability == result.probability
        assert restored.details["plan"] == result.details["plan"]


class TestPlanCLI:
    def test_plan_prints_without_executing(self, capsys):
        from repro import cli

        code = cli.main(["plan", "--grid", "6", "--auto", "--samples", "300",
                         "--target-error", "0.001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "method           : dense" in out
        assert "target error     : 0.001" in out
        assert "probability" not in out  # planned, not executed

    def test_mvn_auto_with_target(self, capsys):
        from repro import cli

        code = cli.main(["mvn", "--grid", "5", "--auto", "--samples", "200",
                        "--target-error", "0.005", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan             : method=dense" in out
        assert "accuracy target  : 0.005 met" in out

    def test_batch_auto_with_target(self, capsys, tmp_path):
        from repro import cli

        boxes = np.stack([
            np.stack([np.full(25, -np.inf), np.full(25, 1.0)]),
            np.stack([np.full(25, -np.inf), np.full(25, 2.0)]),
        ])
        path = tmp_path / "boxes.npy"
        np.save(path, boxes)
        code = cli.main(["batch", "--grid", "5", "--boxes", str(path), "--auto",
                         "--samples", "200", "--target-error", "0.005", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan             : method=dense" in out
        assert "met for 2/2" in out
