"""End-to-end integration tests covering the paper's full pipelines."""

import numpy as np
import pytest

from repro.core import confidence_region
from repro.datasets import make_synthetic_dataset, make_wind_dataset
from repro.excursion import compare_confidence_functions, excursion_map, mc_validate_regions, region_overlap
from repro.runtime import Runtime
from repro.stats import fit_kernel


class TestSyntheticPipeline:
    """The Figure 1 pipeline at reduced size: data -> posterior -> CRD -> validation."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synthetic_dataset("medium", grid_size=12, rng=0)

    @pytest.fixture(scope="class")
    def crd_results(self, dataset):
        u = dataset.default_threshold(0.5)
        dense = confidence_region(
            dataset.posterior.covariance, dataset.posterior.mean, u,
            method="dense", n_samples=4000, tile_size=48, rng=3,
        )
        tlr = confidence_region(
            dataset.posterior.covariance, dataset.posterior.mean, u,
            method="tlr", accuracy=1e-3, n_samples=4000, tile_size=48, rng=3,
        )
        return u, dense, tlr

    def test_joint_region_smaller_than_marginal_region(self, dataset, crd_results):
        """The paper's key qualitative point: the joint (MVN-based) confidence
        region is a subset of the marginal-probability region."""
        _, dense, _ = crd_results
        marginal_region = dense.marginal_probabilities >= 0.75
        joint_region = dense.excursion_set(alpha=0.25)
        assert joint_region.sum() <= marginal_region.sum()
        assert np.all(marginal_region[joint_region])

    def test_mc_validation_consistent(self, dataset, crd_results):
        _, dense, _ = crd_results
        val = mc_validate_regions(dense, dataset.posterior.covariance, dataset.posterior.mean,
                                  n_samples=6000, rng=1)
        nonempty = [i for i, lvl in enumerate(val.levels) if dense.region_size(1 - lvl) > 0]
        # detected regions never violate their confidence level beyond MC noise
        assert np.all(val.differences[nonempty] <= 0.03)

    def test_dense_tlr_agreement(self, crd_results):
        _, dense, tlr = crd_results
        cmp = compare_confidence_functions(dense, tlr)
        assert cmp["max_pointwise_difference"] < 5e-3
        overlap = region_overlap(dense.excursion_set(0.25), tlr.excursion_set(0.25))
        assert overlap["jaccard"] > 0.9 or overlap["size_a"] == 0

    def test_excursion_map_renderable(self, dataset, crd_results):
        _, dense, _ = crd_results
        img = excursion_map(dataset.geometry, dense, alpha=0.25)
        assert img.shape == dataset.geometry.grid_shape


class TestWindPipeline:
    """The Figure 2/3 pipeline at reduced size: simulate -> standardize -> MLE -> CRD."""

    @pytest.fixture(scope="class")
    def wind(self):
        return make_wind_dataset(grid_nx=14, grid_ny=10, rng=5)

    def test_mle_fits_reasonable_parameters(self, wind):
        fit = fit_kernel(
            wind.geometry.locations, wind.standardized, family="matern",
            fixed_smoothness=1.43391, max_iterations=40,
        )
        assert fit.theta[0] > 0.05          # variance
        assert 0.001 < fit.theta[1] < 2.0   # range

    def test_crd_detects_windy_regions(self, wind):
        from repro.kernels import build_covariance

        fit = fit_kernel(
            wind.geometry.locations, wind.standardized, family="matern",
            fixed_smoothness=1.43391, max_iterations=30,
        )
        sigma = build_covariance(fit.kernel, wind.geometry.locations, nugget=1e-6)
        res = confidence_region(
            sigma, wind.standardized, wind.standardized_threshold,
            method="tlr", accuracy=1e-4, n_samples=3000, tile_size=35, rng=0,
        )
        region = res.excursion_set(alpha=0.5)
        if region.any():
            # every detected location must actually have high wind speed
            assert wind.wind_speed[region].min() >= wind.threshold_ms - 1.0
        # the marginal map must flag at least as many locations as the joint region
        assert (res.marginal_probabilities >= 0.5).sum() >= region.sum()


class TestParallelConsistency:
    """The task-parallel execution must be bit-reproducible against serial."""

    def test_full_crd_parallel_equals_serial(self):
        ds = make_synthetic_dataset("strong", grid_size=10, rng=2)
        u = ds.default_threshold(0.5)
        serial = confidence_region(
            ds.posterior.covariance, ds.posterior.mean, u,
            n_samples=2000, tile_size=25, rng=9, runtime=Runtime(n_workers=1),
        )
        parallel = confidence_region(
            ds.posterior.covariance, ds.posterior.mean, u,
            n_samples=2000, tile_size=25, rng=9, runtime=Runtime(n_workers=6, policy="locality"),
        )
        np.testing.assert_allclose(
            serial.confidence_function, parallel.confidence_function, atol=1e-10
        )
