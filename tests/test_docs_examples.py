"""Executable documentation: doctests, README/docs snippets, drift guards.

Four layers keep the documentation honest:

* the doctest examples embedded in the package docstrings run as tests,
* every fenced ``python`` block in ``README.md`` and the narrative pages
  under ``docs/`` is executed in a fresh namespace (the snippets contain
  their own asserts),
* the ``method=`` registry (:mod:`repro.core.methods`) is checked against
  the ``mvn_probability`` docstring, the ``ValueError`` text, and the
  generated block of ``docs/methods.md`` — one shared tuple, no drift,
* the generated API reference (``docs/api.md``) is regenerated from
  :func:`repro.utils.apidoc.api_markdown` and compared, so the public
  surface cannot drift from its documentation.

All of these carry the ``docs`` marker: ``pytest -m docs`` runs exactly
the executable-documentation suite (it is part of the default tier-1 run).
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

import repro
import repro.batch
import repro.batch.batched
import repro.batch.cache
import repro.mvn.result
import repro.query
import repro.query.planner
import repro.query.spec
import repro.serve
import repro.serve.broker
import repro.serve.net
import repro.serve.net.placement
import repro.serve.pool
import repro.solver
import repro.solver.solver
from repro.core.methods import (
    ACCEPTED_METHODS,
    METHOD_SPECS,
    canonical_method,
    methods_markdown,
    unknown_method_message,
)
from repro.utils.apidoc import api_markdown

pytestmark = pytest.mark.docs

REPO_ROOT = Path(__file__).resolve().parent.parent


def _python_blocks(path: Path) -> list[str]:
    blocks = re.findall(r"```python\n(.*?)```", path.read_text(), flags=re.DOTALL)
    assert blocks, f"{path} contains no fenced python blocks"
    return blocks


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [repro, repro.batch, repro.batch.batched, repro.batch.cache,
         repro.mvn.result, repro.query, repro.query.planner, repro.query.spec,
         repro.serve, repro.serve.broker, repro.serve.net,
         repro.serve.net.placement, repro.serve.pool,
         repro.solver, repro.solver.solver],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests(self, module):
        outcome = doctest.testmod(module, verbose=False)
        assert outcome.attempted > 0, f"{module.__name__} has no doctest examples"
        assert outcome.failed == 0


class TestDocumentSnippets:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "docs/batch.md", "docs/solver.md", "docs/performance.md",
         "docs/serving.md", "docs/query.md", "docs/runtime.md",
         "docs/updates.md", "docs/pipelines.md"],
    )
    def test_python_blocks_execute(self, name):
        for idx, block in enumerate(_python_blocks(REPO_ROOT / name)):
            namespace: dict = {}
            try:
                exec(compile(block, f"{name}[block {idx}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"{name} python block {idx} failed: {exc!r}\n{block}")

    def test_readme_links_resolve(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for target in re.findall(r"\]\((docs/[^)#]+)", readme):
            assert (REPO_ROOT / target).is_file(), f"README links to missing {target}"
        assert "## Glossary" in readme
        for term in ("SOV", "PMVN", "TLR", "CRD", "Chain block", "Micro-batching",
                     "Shard", "Factor fingerprint", "Kernel backend",
                     "Workspace pooling", "Query", "Query plan", "Error target",
                     "Rank-k update", "Lineage fingerprint", "Pipeline",
                     "Plan edge", "Stage fusion"):
            assert term in readme, f"glossary term {term} missing from README"

    def test_every_docs_page_reachable_from_readme(self):
        """Documentation must not orphan: each docs/*.md is linked from README."""
        readme = (REPO_ROOT / "README.md").read_text()
        linked = set(re.findall(r"\]\(docs/([^)#]+)\)", readme))
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            assert page.name in linked, f"docs/{page.name} is not linked from README"

    def test_docs_cross_links_resolve(self):
        """Relative links between docs pages must point at real files."""
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            text = page.read_text()
            for target in re.findall(r"\]\(([A-Za-z0-9_.-]+\.md)[#)]", text):
                assert (REPO_ROOT / "docs" / target).is_file(), (
                    f"docs/{page.name} links to missing docs/{target}"
                )


class TestMethodRegistrySync:
    def test_docstring_lists_every_method(self):
        doc = repro.mvn_probability.__doc__
        for spec in METHOD_SPECS:
            assert f'``"{spec.name}"``' in doc, f"{spec.name} missing from docstring"
        assert "__METHOD_LIST__" not in doc and "__METHOD_SET__" not in doc

    def test_error_message_generated_from_registry(self):
        with pytest.raises(ValueError) as excinfo:
            repro.mvn_probability([0.0], [1.0], [[1.0]], method="nope")
        assert str(excinfo.value) == unknown_method_message("nope")
        for name in ACCEPTED_METHODS:
            assert f"'{name}'" in str(excinfo.value)

    def test_aliases_resolve(self):
        for spec in METHOD_SPECS:
            assert canonical_method(spec.name) == spec.name
            for alias in spec.aliases:
                assert canonical_method(alias) == spec.name
            assert canonical_method(spec.name.upper()) == spec.name

    def test_methods_md_matches_generator(self):
        text = (REPO_ROOT / "docs" / "methods.md").read_text()
        marker = re.search(
            r"<!-- BEGIN GENERATED METHODS.*?-->\n(.*?)<!-- END GENERATED METHODS -->",
            text,
            flags=re.DOTALL,
        )
        assert marker, "docs/methods.md lost its GENERATED markers"
        assert marker.group(1).strip() == methods_markdown().strip(), (
            "docs/methods.md is out of date; regenerate with "
            "python -c 'from repro.core.methods import methods_markdown; print(methods_markdown())'"
        )

    def test_methods_md_mentions_every_benchmark(self):
        text = (REPO_ROOT / "docs" / "methods.md").read_text()
        for script in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert script.name in text, f"{script.name} missing from docs/methods.md"

    def test_api_md_matches_generator(self):
        text = (REPO_ROOT / "docs" / "api.md").read_text()
        marker = re.search(
            r"<!-- BEGIN GENERATED API REFERENCE.*?-->\n(.*?)<!-- END GENERATED API REFERENCE -->",
            text,
            flags=re.DOTALL,
        )
        assert marker, "docs/api.md lost its GENERATED markers"
        assert marker.group(1).strip() == api_markdown().strip(), (
            "docs/api.md is out of date; regenerate with "
            "python -c 'from repro.utils.apidoc import api_markdown; print(api_markdown())'"
        )

    def test_api_md_covers_public_surface(self):
        """Every __all__ name of the documented packages appears in docs/api.md."""
        import repro.core.api

        text = (REPO_ROOT / "docs" / "api.md").read_text()
        for module in (repro.solver, repro.query, repro.batch, repro.serve,
                       repro.core.api):
            for name in module.__all__:
                assert f"`{name}`" in text, (
                    f"{module.__name__}.{name} missing from docs/api.md"
                )

    def test_cli_choices_match_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        seen = []
        for sub in parser._subparsers._group_actions:
            for name, choice in sub.choices.items():
                for action in choice._actions:
                    if action.dest != "method":
                        continue
                    seen.append(name)
                    if name in ("mvn", "batch"):
                        # the general-purpose subcommands offer the full registry
                        assert tuple(action.choices) == ACCEPTED_METHODS, name
                    else:
                        # specialized subcommands may restrict, never invent
                        assert set(action.choices) <= set(ACCEPTED_METHODS), name
        assert {"mvn", "batch"} <= set(seen)
