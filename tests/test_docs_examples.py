"""Executable documentation: doctests, README/docs snippets, drift guards.

Three layers keep the documentation honest:

* the doctest examples embedded in the package docstrings run as tests,
* every fenced ``python`` block in ``README.md``, ``docs/batch.md`` and
  ``docs/solver.md`` is executed in a fresh namespace (the snippets contain
  their own asserts),
* the ``method=`` registry (:mod:`repro.core.methods`) is checked against
  the ``mvn_probability`` docstring, the ``ValueError`` text, and the
  generated block of ``docs/methods.md`` — one shared tuple, no drift.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

import repro
import repro.batch
import repro.batch.batched
import repro.batch.cache
import repro.solver
import repro.solver.solver
from repro.core.methods import (
    ACCEPTED_METHODS,
    METHOD_SPECS,
    canonical_method,
    methods_markdown,
    unknown_method_message,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _python_blocks(path: Path) -> list[str]:
    blocks = re.findall(r"```python\n(.*?)```", path.read_text(), flags=re.DOTALL)
    assert blocks, f"{path} contains no fenced python blocks"
    return blocks


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [repro, repro.batch, repro.batch.batched, repro.batch.cache,
         repro.solver, repro.solver.solver],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests(self, module):
        outcome = doctest.testmod(module, verbose=False)
        assert outcome.attempted > 0, f"{module.__name__} has no doctest examples"
        assert outcome.failed == 0


class TestDocumentSnippets:
    @pytest.mark.parametrize("name", ["README.md", "docs/batch.md", "docs/solver.md", "docs/performance.md"])
    def test_python_blocks_execute(self, name):
        for idx, block in enumerate(_python_blocks(REPO_ROOT / name)):
            namespace: dict = {}
            try:
                exec(compile(block, f"{name}[block {idx}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"{name} python block {idx} failed: {exc!r}\n{block}")

    def test_readme_links_resolve(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for target in re.findall(r"\]\((docs/[^)#]+)", readme):
            assert (REPO_ROOT / target).is_file(), f"README links to missing {target}"
        assert "## Glossary" in readme
        for term in ("SOV", "PMVN", "TLR", "CRD", "Chain block"):
            assert term in readme, f"glossary term {term} missing from README"


class TestMethodRegistrySync:
    def test_docstring_lists_every_method(self):
        doc = repro.mvn_probability.__doc__
        for spec in METHOD_SPECS:
            assert f'``"{spec.name}"``' in doc, f"{spec.name} missing from docstring"
        assert "__METHOD_LIST__" not in doc and "__METHOD_SET__" not in doc

    def test_error_message_generated_from_registry(self):
        with pytest.raises(ValueError) as excinfo:
            repro.mvn_probability([0.0], [1.0], [[1.0]], method="nope")
        assert str(excinfo.value) == unknown_method_message("nope")
        for name in ACCEPTED_METHODS:
            assert f"'{name}'" in str(excinfo.value)

    def test_aliases_resolve(self):
        for spec in METHOD_SPECS:
            assert canonical_method(spec.name) == spec.name
            for alias in spec.aliases:
                assert canonical_method(alias) == spec.name
            assert canonical_method(spec.name.upper()) == spec.name

    def test_methods_md_matches_generator(self):
        text = (REPO_ROOT / "docs" / "methods.md").read_text()
        marker = re.search(
            r"<!-- BEGIN GENERATED METHODS.*?-->\n(.*?)<!-- END GENERATED METHODS -->",
            text,
            flags=re.DOTALL,
        )
        assert marker, "docs/methods.md lost its GENERATED markers"
        assert marker.group(1).strip() == methods_markdown().strip(), (
            "docs/methods.md is out of date; regenerate with "
            "python -c 'from repro.core.methods import methods_markdown; print(methods_markdown())'"
        )

    def test_methods_md_mentions_every_benchmark(self):
        text = (REPO_ROOT / "docs" / "methods.md").read_text()
        for script in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert script.name in text, f"{script.name} missing from docs/methods.md"

    def test_cli_choices_match_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        seen = []
        for sub in parser._subparsers._group_actions:
            for name, choice in sub.choices.items():
                for action in choice._actions:
                    if action.dest != "method":
                        continue
                    seen.append(name)
                    if name in ("mvn", "batch"):
                        # the general-purpose subcommands offer the full registry
                        assert tuple(action.choices) == ACCEPTED_METHODS, name
                    else:
                        # specialized subcommands may restrict, never invent
                        assert set(action.choices) <= set(ACCEPTED_METHODS), name
        assert {"mvn", "batch"} <= set(seen)
