"""Tests for the extension features: variable reordering, connected-region
analysis, TLR solves, and mixed-precision factorization."""

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.core import factorize, pmvn_integrate, PMVNOptions
from repro.excursion import RegionSummary, label_regions, region_summaries
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.mvn import (
    apply_ordering,
    gb_reordering,
    inverse_permutation,
    mvn_sov_vectorized,
    univariate_reordering,
)
from repro.tlr import (
    TLRMatrix,
    tlr_cholesky,
    tlr_lower_solve,
    tlr_matmat,
    tlr_matvec,
    tlr_quadratic_form,
)


@pytest.fixture
def spd_cov():
    geom = Geometry.regular_grid(7, 7)
    return build_covariance(ExponentialKernel(1.0, 0.25), geom.locations, nugget=1e-8)


class TestReordering:
    def test_univariate_ordering_sorts_by_interval_width(self, rng):
        sigma = np.diag(rng.uniform(0.5, 2.0, 6))
        a = np.array([-0.1, -np.inf, -1.0, -0.5, -np.inf, -2.0])
        b = np.array([0.1, 0.0, 1.0, 0.5, np.inf, 2.0])
        order = univariate_reordering(a, b, sigma)
        std = np.sqrt(np.diag(sigma))
        from repro.stats.normal import norm_cdf

        widths = norm_cdf(b / std) - norm_cdf(a / std)
        assert np.all(np.diff(widths[order]) >= -1e-12)

    def test_orderings_are_permutations(self, spd_cov, rng):
        n = spd_cov.shape[0]
        a = rng.normal(-1, 0.5, n)
        b = a + rng.uniform(0.5, 2.0, n)
        for order in (univariate_reordering(a, b, spd_cov), gb_reordering(a, b, spd_cov)):
            assert sorted(order.tolist()) == list(range(n))

    def test_inverse_permutation(self, rng):
        order = rng.permutation(10)
        inv = inverse_permutation(order)
        np.testing.assert_array_equal(order[inv], np.arange(10))
        np.testing.assert_array_equal(inv[order], np.arange(10))

    def test_apply_ordering_preserves_probability(self, rng):
        """The MVN probability is invariant under a joint permutation."""
        a_mat = rng.standard_normal((6, 6))
        sigma = a_mat @ a_mat.T + 6 * np.eye(6)
        a = np.full(6, -np.inf)
        b = rng.standard_normal(6)
        ref = multivariate_normal(cov=sigma).cdf(b)
        for reorder in (univariate_reordering, gb_reordering):
            order = reorder(a, b, sigma)
            a2, b2, sigma2 = apply_ordering(a, b, sigma, order)
            res = mvn_sov_vectorized(a2, b2, sigma2, n_samples=4000, rng=0)
            assert res.probability == pytest.approx(ref, abs=5e-3)

    def test_gb_reordering_reduces_estimator_variance(self, rng):
        """Reordering should not increase the chain variance of the SOV estimator."""
        geom = Geometry.regular_grid(5, 5)
        sigma = build_covariance(ExponentialKernel(1.0, 0.3), geom.locations, nugget=1e-8)
        n = sigma.shape[0]
        a = np.full(n, -np.inf)
        b = rng.uniform(-1.5, 0.5, n)

        def chain_std(a_, b_, s_):
            res = mvn_sov_vectorized(a_, b_, s_, n_samples=4000, rng=3, return_chain_values=True)
            return res.details["chain_values"].std()

        base = chain_std(a, b, sigma)
        order = gb_reordering(a, b, sigma)
        reordered = chain_std(*apply_ordering(a, b, sigma, order))
        assert reordered <= base * 1.25


class TestRegionLabeling:
    def test_single_region(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:3, 1:4] = True
        labels = label_regions(mask)
        assert labels.max() == 1
        assert (labels > 0).sum() == mask.sum()

    def test_two_diagonal_regions_4_vs_8_connectivity(self):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        assert label_regions(mask, connectivity=4).max() == 2
        assert label_regions(mask, connectivity=8).max() == 1

    def test_empty_mask(self):
        labels = label_regions(np.zeros((3, 3), dtype=bool))
        assert labels.max() == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            label_regions(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            label_regions(np.zeros((2, 2), dtype=bool), connectivity=6)

    def test_summaries_sorted_by_size(self):
        mask = np.zeros((6, 8), dtype=bool)
        mask[0:2, 0:2] = True       # 4 cells
        mask[4:6, 2:7] = True       # 10 cells
        summaries = region_summaries(mask)
        assert [s.size for s in summaries] == [10, 4]
        assert summaries[0].bounding_box == (4, 5, 2, 6)
        assert isinstance(summaries[0], RegionSummary)

    def test_summaries_from_vector_with_geometry(self):
        geom = Geometry.regular_grid(4, 3)
        values = np.zeros(geom.n)
        values[[0, 1, 4]] = 1.0
        summaries = region_summaries(values, geometry=geom)
        assert summaries[0].size == 3

    def test_min_size_filter(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        mask[2:4, 2:4] = True
        summaries = region_summaries(mask, min_size=2)
        assert len(summaries) == 1
        assert summaries[0].size == 4

    def test_vector_without_geometry_rejected(self):
        with pytest.raises(ValueError):
            region_summaries(np.zeros(5))


class TestTLROperations:
    @pytest.fixture
    def tlr_and_dense(self, spd_cov):
        tlr = TLRMatrix.from_dense(spd_cov, tile_size=14, accuracy=1e-9)
        return tlr, spd_cov

    def test_matvec_matches_dense(self, tlr_and_dense, rng):
        tlr, dense = tlr_and_dense
        x = rng.standard_normal(dense.shape[0])
        np.testing.assert_allclose(tlr_matvec(tlr, x), dense @ x, atol=1e-6)

    def test_matmat_matches_dense(self, tlr_and_dense, rng):
        tlr, dense = tlr_and_dense
        x = rng.standard_normal((dense.shape[0], 3))
        np.testing.assert_allclose(tlr_matmat(tlr, x), dense @ x, atol=1e-6)

    def test_lower_factor_matvec(self, tlr_and_dense, rng):
        tlr, dense = tlr_and_dense
        factor = tlr_cholesky(tlr)
        x = rng.standard_normal(dense.shape[0])
        expected = np.linalg.cholesky(dense) @ x
        np.testing.assert_allclose(tlr_matvec(factor, x, lower_factor=True), expected, atol=1e-5)

    def test_lower_solve_matches_dense(self, tlr_and_dense, rng):
        tlr, dense = tlr_and_dense
        factor = tlr_cholesky(tlr)
        rhs = rng.standard_normal(dense.shape[0])
        x = tlr_lower_solve(factor, rhs)
        np.testing.assert_allclose(np.linalg.cholesky(dense) @ x, rhs, atol=1e-5)

    def test_lower_solve_matrix_rhs(self, tlr_and_dense, rng):
        tlr, dense = tlr_and_dense
        factor = tlr_cholesky(tlr)
        rhs = rng.standard_normal((dense.shape[0], 4))
        x = tlr_lower_solve(factor, rhs)
        assert x.shape == rhs.shape

    def test_quadratic_form_matches_direct(self, tlr_and_dense, rng):
        tlr, dense = tlr_and_dense
        factor = tlr_cholesky(tlr)
        z = rng.standard_normal(dense.shape[0])
        expected = float(z @ np.linalg.solve(dense, z))
        assert tlr_quadratic_form(factor, z) == pytest.approx(expected, rel=1e-5)

    def test_shape_validation(self, tlr_and_dense):
        tlr, dense = tlr_and_dense
        with pytest.raises(ValueError):
            tlr_matvec(tlr, np.zeros(3))
        with pytest.raises(ValueError):
            tlr_lower_solve(tlr, np.zeros(3))


class TestMixedPrecision:
    def test_single_precision_factor_close_to_double(self, spd_cov):
        double = factorize(spd_cov, method="dense", tile_size=14, precision="double")
        single = factorize(spd_cov, method="dense", tile_size=14, precision="single")
        diff = np.max(np.abs(double.to_dense() - single.to_dense()))
        assert 0.0 < diff < 1e-4

    def test_single_precision_probability_accuracy(self, spd_cov):
        """The paper's future-work claim: reduced precision barely moves the
        MVN probability at the accuracy levels the application needs."""
        n = spd_cov.shape[0]
        a, b = np.full(n, -np.inf), np.full(n, 0.5)
        options = PMVNOptions(n_samples=2000, rng=4)
        probs = {}
        for precision in ("double", "single"):
            factor = factorize(spd_cov, method="tlr", tile_size=14, accuracy=1e-4, precision=precision)
            probs[precision] = pmvn_integrate(a, b, factor, options).probability
        assert probs["single"] == pytest.approx(probs["double"], abs=1e-4)

    def test_half_precision_larger_error_than_single(self, spd_cov):
        dense = factorize(spd_cov, method="dense", tile_size=14, precision="double").to_dense()
        single = factorize(spd_cov, method="dense", tile_size=14, precision="single").to_dense()
        half = factorize(spd_cov, method="dense", tile_size=14, precision="half").to_dense()
        assert np.max(np.abs(half - dense)) > np.max(np.abs(single - dense))

    def test_unknown_precision_rejected(self, spd_cov):
        with pytest.raises(ValueError):
            factorize(spd_cov, precision="quad")

    def test_rsvd_compression_option(self, spd_cov):
        svd = factorize(spd_cov, method="tlr", tile_size=14, accuracy=1e-6, compression="svd")
        rsvd = factorize(spd_cov, method="tlr", tile_size=14, accuracy=1e-6, compression="rsvd")
        np.testing.assert_allclose(svd.to_dense(), rsvd.to_dense(), atol=1e-4)
