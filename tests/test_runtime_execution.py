"""Tests for runtime execution (serial/threaded), schedulers and traces."""

import threading

import numpy as np
import pytest

from repro.runtime import (
    READ,
    READWRITE,
    ExecutionTrace,
    FifoScheduler,
    LocalityScheduler,
    PriorityScheduler,
    Runtime,
    Task,
    TaskError,
    TaskState,
    make_scheduler,
)
from repro.runtime.trace import TaskRecord


class TestSchedulers:
    def test_fifo_order(self):
        s = FifoScheduler()
        t1, t2 = Task(lambda: None, name="a"), Task(lambda: None, name="b")
        s.push(t1)
        s.push(t2)
        assert s.pop() is t1
        assert s.pop() is t2
        assert s.pop() is None

    def test_priority_order(self):
        s = PriorityScheduler()
        low = Task(lambda: None, priority=1)
        high = Task(lambda: None, priority=10)
        s.push(low)
        s.push(high)
        assert s.pop() is high

    def test_priority_ties_fifo(self):
        s = PriorityScheduler()
        t1, t2 = Task(lambda: None, priority=5), Task(lambda: None, priority=5)
        s.push(t1)
        s.push(t2)
        assert s.pop() is t1

    def test_locality_prefers_home_worker(self):
        from repro.runtime import DataHandle, WRITE

        s = LocalityScheduler(n_workers=2)
        h0 = DataHandle(home=0)
        h1 = DataHandle(home=1)
        t0 = Task(lambda x: None, [(h0, WRITE)])
        t1 = Task(lambda x: None, [(h1, WRITE)])
        s.push(t0)
        s.push(t1)
        assert s.pop(worker=1) is t1
        assert s.pop(worker=0) is t0

    def test_locality_steals_when_empty(self):
        from repro.runtime import DataHandle, WRITE

        s = LocalityScheduler(n_workers=2)
        h0 = DataHandle(home=0)
        t0 = Task(lambda x: None, [(h0, WRITE)])
        s.push(t0)
        assert s.pop(worker=1) is t0

    def test_factory_aliases(self):
        assert isinstance(make_scheduler("eager"), FifoScheduler)
        assert isinstance(make_scheduler("prio"), PriorityScheduler)
        assert isinstance(make_scheduler("dmda", 2), LocalityScheduler)
        with pytest.raises(ValueError):
            make_scheduler("whatever")

    def test_len(self):
        s = PriorityScheduler()
        assert len(s) == 0
        s.push(Task(lambda: None))
        assert len(s) == 1


class TestRuntimeSerial:
    def test_tasks_run_in_dependency_order(self):
        rt = Runtime(n_workers=1)
        log = []
        h = rt.register(0, name="counter")
        for i in range(5):
            rt.insert_task(lambda _x, i=i: log.append(i), (h, READWRITE), name=f"t{i}")
        rt.wait_all()
        assert log == [0, 1, 2, 3, 4]

    def test_results_available(self):
        rt = Runtime(n_workers=1)
        h = rt.register(np.arange(4.0))
        task = rt.insert_task(lambda x: float(x.sum()), (h, READ))
        rt.wait_all()
        assert task.result == pytest.approx(6.0)
        assert task.state == TaskState.DONE

    def test_failure_raises_task_error(self):
        rt = Runtime(n_workers=1)

        def boom():
            raise RuntimeError("kaboom")

        rt.insert_task(boom, name="boom")
        with pytest.raises(TaskError, match="boom"):
            rt.wait_all()

    def test_failure_marks_dependents_failed(self):
        rt = Runtime(n_workers=1)
        h = rt.register(0)

        def boom(_x):
            raise ValueError("fail")

        t1 = rt.insert_task(boom, (h, READWRITE))
        t2 = rt.insert_task(lambda x: None, (h, READ))
        with pytest.raises(TaskError):
            rt.wait_all()
        assert t1.state == TaskState.FAILED
        assert t2.state == TaskState.FAILED

    def test_failure_suppressed_when_requested(self):
        rt = Runtime(n_workers=1)
        rt.insert_task(lambda: 1 / 0, name="div")
        executed = rt.wait_all(raise_on_error=False)
        assert len(executed) == 1

    def test_runtime_reusable_after_wait(self):
        rt = Runtime(n_workers=1)
        h = rt.register(np.zeros(2))
        rt.insert_task(lambda x: x + 1, (h, READWRITE))
        rt.wait_all()
        rt.insert_task(lambda x: x + 1, (h, READWRITE))
        rt.wait_all()
        assert np.all(h.get() == 2.0)

    def test_empty_wait_all(self):
        assert Runtime().wait_all() == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Runtime(n_workers=0)

    def test_map_helper(self):
        rt = Runtime()
        tasks = rt.map(lambda x: x * 2, [1, 2, 3])
        rt.wait_all()
        assert [t.result for t in tasks] == [2, 4, 6]

    def test_executed_history_is_bounded(self, monkeypatch):
        """Long-lived runtimes (solver sessions, serve shards) must not
        retain every Task ever run — only a trailing window, plus a total
        counter."""
        monkeypatch.setattr(Runtime, "EXECUTED_HISTORY", 4)
        rt = Runtime()
        for _ in range(3):
            rt.map(lambda x: x + 1, [1, 2, 3])
            rt.wait_all()
        assert rt.tasks_executed == 9
        assert len(rt.executed_tasks) == 4

    def test_context_manager_waits(self):
        results = []
        with Runtime() as rt:
            rt.insert_task(lambda: results.append(1))
        assert results == [1]


class TestRuntimeThreaded:
    @pytest.mark.parametrize("policy", ["fifo", "prio", "locality", "blevel", "worksteal"])
    def test_parallel_chain_correctness(self, policy):
        """A chain of dependent increments must serialize; independent chains overlap."""
        rt = Runtime(n_workers=4, policy=policy)
        arrays = [np.zeros(1) for _ in range(6)]
        handles = [rt.register(a, name=f"a{i}", home=i) for i, a in enumerate(arrays)]
        for _ in range(10):
            for h in handles:
                rt.insert_task(lambda x: None if x.__iadd__(1.0) is not None else None, (h, READWRITE))
        rt.wait_all()
        for a in arrays:
            assert a[0] == 10.0

    def test_parallel_results_match_serial(self, medium_spd):
        from repro.tile import TileMatrix, tiled_cholesky

        serial = tiled_cholesky(TileMatrix.from_dense(medium_spd, 10, lower_only=True), Runtime(1))
        parallel = tiled_cholesky(
            TileMatrix.from_dense(medium_spd, 10, lower_only=True), Runtime(4, policy="prio")
        )
        np.testing.assert_allclose(serial.to_dense(), parallel.to_dense(), rtol=1e-12)

    def test_parallel_failure_propagates(self):
        rt = Runtime(n_workers=3)
        h = rt.register(0)

        def boom(_x):
            raise RuntimeError("threaded failure")

        rt.insert_task(boom, (h, READWRITE))
        follow = rt.insert_task(lambda x: None, (h, READ))
        with pytest.raises(TaskError):
            rt.wait_all()
        assert follow.state == TaskState.FAILED

    def test_many_independent_tasks_all_execute(self):
        rt = Runtime(n_workers=8)
        counter = {"n": 0}
        lock = threading.Lock()

        def work():
            with lock:
                counter["n"] += 1

        for _ in range(200):
            rt.insert_task(work)
        rt.wait_all()
        assert counter["n"] == 200

    def test_trace_recorded(self):
        rt = Runtime(n_workers=2, trace=True)
        for _ in range(10):
            rt.insert_task(lambda: None, tag="noop")
        rt.wait_all()
        assert len(rt.trace) == 10
        assert rt.trace.tag_counts()["noop"] == 10


class TestExecutionTrace:
    def test_makespan_and_busy_time(self):
        trace = ExecutionTrace()
        trace.record(TaskRecord("a", "x", 0, 0.0, 1.0))
        trace.record(TaskRecord("b", "x", 1, 0.5, 2.0))
        assert trace.makespan == pytest.approx(2.0)
        assert trace.total_busy_time == pytest.approx(2.5)

    def test_efficiency_bounded(self):
        trace = ExecutionTrace()
        trace.record(TaskRecord("a", "x", 0, 0.0, 1.0))
        assert 0.0 < trace.parallel_efficiency(2) <= 1.0

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.makespan == 0.0
        assert trace.parallel_efficiency(4) == 1.0

    def test_tag_breakdown(self):
        trace = ExecutionTrace()
        trace.record(TaskRecord("a", "gemm", 0, 0.0, 1.0))
        trace.record(TaskRecord("b", "gemm", 0, 1.0, 3.0))
        trace.record(TaskRecord("c", "potrf", 0, 3.0, 3.5))
        breakdown = trace.tag_breakdown()
        assert breakdown["gemm"] == pytest.approx(3.0)
        assert breakdown["potrf"] == pytest.approx(0.5)

    def test_worker_busy_time(self):
        trace = ExecutionTrace()
        trace.record(TaskRecord("a", "", 0, 0.0, 1.0))
        trace.record(TaskRecord("b", "", 1, 0.0, 2.0))
        busy = trace.worker_busy_time()
        assert busy[0] == pytest.approx(1.0)
        assert busy[1] == pytest.approx(2.0)

    def test_summary(self):
        trace = ExecutionTrace()
        trace.record(TaskRecord("a", "", 0, 0.0, 1.0))
        summary = trace.summary(n_workers=1)
        assert summary["tasks"] == 1.0
        assert summary["makespan"] == pytest.approx(1.0)
