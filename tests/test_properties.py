"""Property-based tests (hypothesis) on the core numerical invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import ExponentialKernel, MaternKernel, pairwise_distances
from repro.runtime import READ, READWRITE, WRITE, DataHandle, Task, TaskGraph
from repro.stats.normal import norm_cdf, norm_cdf_interval, norm_ppf
from repro.stats.qmc import HaltonSequence, RichtmyerLattice, first_primes
from repro.tile import TileMatrix, tiled_cholesky
from repro.tlr import TLRMatrix, compress_tile, lowrank_add, tlr_cholesky
from repro.mvn import mvn_sov_vectorized

# hypothesis settings shared by the numerically heavier properties
_SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _spd_from_seed(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestNormalProperties:
    @given(hnp.arrays(np.float64, st.integers(1, 50), elements=st.floats(-30, 30)))
    def test_cdf_in_unit_interval(self, x):
        vals = norm_cdf(x)
        assert np.all(vals >= 0.0) and np.all(vals <= 1.0)

    @given(hnp.arrays(np.float64, st.integers(1, 30), elements=st.floats(-6, 6)))
    def test_ppf_cdf_roundtrip(self, x):
        # beyond ~6 sigma the CDF saturates and the inverse loses relative accuracy
        np.testing.assert_allclose(norm_ppf(norm_cdf(x)), x, atol=1e-6)

    @given(
        hnp.arrays(np.float64, 20, elements=st.floats(-10, 10)),
        hnp.arrays(np.float64, 20, elements=st.floats(0, 5)),
    )
    def test_interval_probability_nonnegative(self, a, width):
        b = a + width
        assert np.all(norm_cdf_interval(a, b) >= 0.0)

    @given(st.floats(-6, 6), st.floats(-6, 6))
    def test_cdf_monotone(self, x, y):
        lo, hi = min(x, y), max(x, y)
        assert norm_cdf(np.array([lo]))[0] <= norm_cdf(np.array([hi]))[0] + 1e-15


class TestQMCProperties:
    @given(st.integers(1, 30))
    def test_first_primes_are_prime_and_increasing(self, count):
        primes = first_primes(count)
        assert np.all(np.diff(primes) > 0)
        for p in primes:
            p = int(p)
            assert p >= 2 and all(p % d for d in range(2, int(p**0.5) + 1))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 300), st.integers(0, 1000))
    def test_sequences_stay_in_open_cube(self, dim, n_points, seed):
        for cls in (RichtmyerLattice, HaltonSequence):
            pts = cls(dim, rng=seed).points(n_points)
            assert pts.shape == (n_points, dim)
            assert np.all((pts > 0.0) & (pts < 1.0))


class TestKernelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(0.05, 5.0),
        st.floats(0.01, 2.0),
        st.floats(0.1, 3.0),
        st.integers(2, 12),
        st.integers(0, 100),
    )
    def test_covariance_matrices_are_psd(self, sigma2, range_, smoothness, n, seed):
        rng = np.random.default_rng(seed)
        locs = rng.random((n, 2))
        kern = MaternKernel(sigma2=sigma2, range_=range_, smoothness=smoothness)
        sigma = kern(pairwise_distances(locs))
        eigvals = np.linalg.eigvalsh(0.5 * (sigma + sigma.T))
        assert eigvals.min() > -1e-8 * sigma2

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.05, 5.0), st.floats(0.01, 2.0), st.lists(st.floats(0, 10), min_size=1, max_size=30))
    def test_exponential_bounded_by_variance(self, sigma2, range_, distances):
        kern = ExponentialKernel(sigma2=sigma2, range_=range_)
        vals = kern(np.asarray(distances))
        assert np.all(vals <= sigma2 + 1e-12)
        assert np.all(vals >= 0.0)


class TestTileCholeskyProperties:
    @_SLOW
    @given(st.integers(0, 500), st.integers(2, 24), st.integers(1, 9))
    def test_factor_reconstructs_input(self, seed, n, tile_size):
        sigma = _spd_from_seed(seed, n)
        factor = tiled_cholesky(TileMatrix.from_dense(sigma, min(tile_size, n), lower_only=True))
        dense = factor.to_dense()
        np.testing.assert_allclose(dense @ dense.T, sigma, atol=1e-7 * n)
        # lower triangular with positive diagonal
        assert np.allclose(dense, np.tril(dense))
        assert np.all(np.diag(dense) > 0)


class TestTLRProperties:
    @_SLOW
    @given(st.integers(0, 300), st.floats(1e-6, 1e-1), st.integers(8, 30))
    def test_compression_error_bounded_by_accuracy(self, seed, accuracy, n):
        rng = np.random.default_rng(seed)
        # construct a tile with decaying spectrum like a covariance off-diagonal block
        u = rng.standard_normal((n, n))
        s = np.logspace(0, -10, n)
        dense = (u * s) @ rng.standard_normal((n, n))
        tile = compress_tile(dense, accuracy=accuracy)
        spectral_norm = np.linalg.norm(dense, 2)
        if spectral_norm > 0:
            err = np.linalg.norm(tile.to_dense() - dense, 2) / spectral_norm
            assert err <= max(accuracy * 3.0, 1e-12)

    @_SLOW
    @given(st.integers(0, 200), st.floats(-3, 3))
    def test_lowrank_add_matches_dense_addition(self, seed, alpha):
        rng = np.random.default_rng(seed)
        a_dense = rng.standard_normal((12, 4)) @ rng.standard_normal((4, 10))
        b_dense = rng.standard_normal((12, 3)) @ rng.standard_normal((3, 10))
        a = compress_tile(a_dense, accuracy=1e-12)
        b = compress_tile(b_dense, accuracy=1e-12)
        out = lowrank_add(a, b, alpha=alpha, accuracy=1e-12)
        np.testing.assert_allclose(out.to_dense(), a_dense + alpha * b_dense, atol=1e-6)

    @_SLOW
    @given(st.integers(0, 200), st.integers(12, 40))
    def test_tlr_cholesky_reconstructs_at_tight_accuracy(self, seed, n):
        sigma = _spd_from_seed(seed, n)
        tlr = TLRMatrix.from_dense(sigma, tile_size=max(4, n // 3), accuracy=1e-10)
        factor = tlr_cholesky(tlr)
        dense = factor.to_lower_dense()
        np.testing.assert_allclose(dense @ dense.T, sigma, atol=1e-5 * n)


class TestTaskGraphProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.sampled_from(["R", "W", "RW"])), min_size=1, max_size=30))
    def test_graph_is_always_acyclic_and_complete(self, accesses):
        """Sequential-task-flow graphs are DAGs whose topological order matches submission order."""
        handles = [DataHandle(name=f"h{i}") for i in range(5)]
        modes = {"R": READ, "W": WRITE, "RW": READWRITE}
        graph = TaskGraph()
        tasks = []
        for handle_idx, mode in accesses:
            tasks.append(graph.add_task(Task(lambda *a: None, [(handles[handle_idx], modes[mode])])))
        order = graph.topological_order()
        assert len(order) == len(tasks)
        position = {t: i for i, t in enumerate(order)}
        for task in tasks:
            for pred in graph.predecessors[task]:
                assert position[pred] < position[task]


class TestMVNProperties:
    @_SLOW
    @given(st.integers(0, 300), st.integers(2, 8))
    def test_probability_in_unit_interval(self, seed, n):
        sigma = _spd_from_seed(seed, n)
        rng = np.random.default_rng(seed)
        a = rng.normal(-1, 1, n)
        b = a + rng.uniform(0.5, 3.0, n)
        res = mvn_sov_vectorized(a, b, sigma, n_samples=500, rng=seed)
        assert 0.0 <= res.probability <= 1.0

    @_SLOW
    @given(st.integers(0, 200), st.integers(2, 6))
    def test_probability_monotone_in_box_size(self, seed, n):
        """Enlarging the integration box cannot decrease the probability."""
        sigma = _spd_from_seed(seed, n)
        rng = np.random.default_rng(seed)
        a = rng.normal(-0.5, 0.5, n)
        b = a + rng.uniform(0.5, 2.0, n)
        small = mvn_sov_vectorized(a, b, sigma, n_samples=3000, rng=seed)
        large = mvn_sov_vectorized(a - 0.5, b + 0.5, sigma, n_samples=3000, rng=seed)
        assert large.probability >= small.probability - 5e-3
