"""Tests for the Student-t extension, excursion-set variants, IO, and the CLI."""

import numpy as np
import pytest
from scipy.stats import multivariate_t, norm, t as student_t

from repro.core import confidence_region
from repro.excursion import excursion_analysis, negative_confidence_region
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.mvn import chi_quantile, mvt_sov_vectorized, mvn_sov_vectorized
from repro.tlr import TLRMatrix
from repro.utils.io import (
    load_confidence_region,
    load_tlr_matrix,
    save_confidence_region,
    save_tlr_matrix,
)
from repro import cli


@pytest.fixture
def field(rng):
    geom = Geometry.regular_grid(5, 4)
    sigma = build_covariance(ExponentialKernel(1.0, 0.3), geom.locations, nugget=1e-8)
    mean = 0.8 * np.exp(-((geom.locations[:, 0] - 0.3) ** 2 + (geom.locations[:, 1] - 0.5) ** 2) / 0.1)
    return geom, sigma, mean


class TestStudentT:
    def test_chi_quantile_median(self):
        """Median of the chi^2_k distribution maps back through the quantile."""
        from scipy.stats import chi2

        for dof in (1.0, 4.0, 10.0):
            u = np.array([0.25, 0.5, 0.9])
            expected = np.sqrt(chi2(dof).ppf(u))
            np.testing.assert_allclose(chi_quantile(u, dof), expected, rtol=1e-10)

    def test_chi_quantile_validation(self):
        with pytest.raises(ValueError):
            chi_quantile(np.array([0.5]), -1.0)
        with pytest.raises(ValueError):
            chi_quantile(np.array([0.0]), 3.0)

    def test_univariate_matches_scipy_t(self):
        dof = 5.0
        b = 1.3
        ref = student_t(dof).cdf(b)
        res = mvt_sov_vectorized([-np.inf], [b], np.array([[1.0]]), dof, n_samples=20_000, rng=0)
        assert res.probability == pytest.approx(ref, abs=5e-3)

    def test_bivariate_matches_scipy_multivariate_t(self):
        sigma = np.array([[1.0, 0.5], [0.5, 2.0]])
        dof = 7.0
        b = np.array([0.8, 1.5])
        ref = multivariate_t(shape=sigma, df=dof).cdf(b)
        res = mvt_sov_vectorized(np.full(2, -np.inf), b, sigma, dof, n_samples=30_000, rng=1)
        assert res.probability == pytest.approx(ref, abs=1e-2)

    def test_converges_to_mvn_for_large_dof(self, rng):
        a_mat = rng.standard_normal((5, 5))
        sigma = a_mat @ a_mat.T + 5 * np.eye(5)
        b = rng.standard_normal(5)
        mvn = mvn_sov_vectorized(np.full(5, -np.inf), b, sigma, n_samples=8000, rng=2).probability
        mvt = mvt_sov_vectorized(np.full(5, -np.inf), b, sigma, 1e6, n_samples=8000, rng=2).probability
        assert mvt == pytest.approx(mvn, abs=5e-3)

    def test_heavier_tails_than_gaussian(self):
        """For a symmetric box the t distribution puts less mass inside."""
        sigma = np.eye(3)
        a, b = np.full(3, -1.0), np.full(3, 1.0)
        gauss = (norm.cdf(1.0) - norm.cdf(-1.0)) ** 3
        res = mvt_sov_vectorized(a, b, sigma, dof=3.0, n_samples=20_000, rng=3)
        assert res.probability < gauss

    def test_invalid_dof(self):
        with pytest.raises(ValueError):
            mvt_sov_vectorized([0.0], [1.0], np.eye(1), dof=0.0)

    def test_result_metadata(self):
        res = mvt_sov_vectorized([-1.0], [1.0], np.eye(1), dof=4.0, n_samples=500, rng=0)
        assert res.method == "mvt-sov"
        assert res.details["dof"] == 4.0


class TestExcursionSetVariants:
    def test_negative_region_mirrors_positive_of_negated_field(self, field):
        geom, sigma, mean = field
        kwargs = dict(n_samples=2000, tile_size=10, rng=5)
        neg = negative_confidence_region(sigma, mean, 0.5, **kwargs)
        pos_of_neg = confidence_region(sigma, -mean, -0.5, **kwargs)
        np.testing.assert_allclose(neg.confidence_function, pos_of_neg.confidence_function)
        assert neg.threshold == 0.5
        assert neg.details["set_type"] == "negative"

    def test_analysis_classification_consistent(self, field):
        geom, sigma, mean = field
        analysis = excursion_analysis(sigma, mean, 0.5, alpha=0.3, n_samples=2000, tile_size=10, rng=5)
        labels = analysis.classification()
        assert labels.shape == (geom.n,)
        summary = analysis.summary()
        assert summary["above"] + summary["below"] + summary["uncertain"] == geom.n
        assert np.count_nonzero(labels == 1) == summary["above"]
        assert np.count_nonzero(labels == -1) == summary["below"]

    def test_positive_and_negative_sets_disjoint(self, field):
        geom, sigma, mean = field
        analysis = excursion_analysis(sigma, mean, 0.5, alpha=0.2, n_samples=2000, tile_size=10, rng=6)
        assert not np.any(analysis.positive_set & analysis.negative_set)

    def test_uncertain_shrinks_with_looser_alpha(self, field):
        geom, sigma, mean = field
        strict = excursion_analysis(sigma, mean, 0.5, alpha=0.05, n_samples=2000, tile_size=10, rng=7)
        loose = excursion_analysis(sigma, mean, 0.5, alpha=0.5, n_samples=2000, tile_size=10, rng=7)
        assert loose.summary()["uncertain"] <= strict.summary()["uncertain"]


class TestIO:
    def test_confidence_region_roundtrip(self, field, tmp_path):
        geom, sigma, mean = field
        result = confidence_region(sigma, mean, 0.5, n_samples=1000, tile_size=10, rng=0)
        path = save_confidence_region(result, tmp_path / "crd.npz")
        loaded = load_confidence_region(path)
        np.testing.assert_allclose(loaded.confidence_function, result.confidence_function)
        np.testing.assert_allclose(loaded.marginal_probabilities, result.marginal_probabilities)
        np.testing.assert_array_equal(loaded.order, result.order)
        assert loaded.threshold == result.threshold
        assert loaded.method == result.method
        assert loaded.region_size(0.3) == result.region_size(0.3)

    def test_tlr_matrix_roundtrip(self, medium_spd, tmp_path):
        tlr = TLRMatrix.from_dense(medium_spd, tile_size=10, accuracy=1e-5, max_rank=8)
        path = save_tlr_matrix(tlr, tmp_path / "matrix.npz")
        loaded = load_tlr_matrix(path)
        assert loaded.n == tlr.n
        assert loaded.tile_size == tlr.tile_size
        assert loaded.max_rank == tlr.max_rank
        np.testing.assert_allclose(loaded.to_dense(), tlr.to_dense(), atol=1e-12)

    def test_tlr_matrix_roundtrip_no_max_rank(self, small_spd, tmp_path):
        tlr = TLRMatrix.from_dense(small_spd, tile_size=4, accuracy=1e-3)
        loaded = load_tlr_matrix(save_tlr_matrix(tlr, tmp_path / "m.npz"))
        assert loaded.max_rank is None


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_mvn_synthetic(self, capsys):
        code = cli.main(["mvn", "--grid", "8", "--method", "sov", "--samples", "500", "--upper", "1.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "probability" in out

    def test_mvn_from_file(self, tmp_path, capsys, small_spd):
        path = tmp_path / "sigma.npy"
        np.save(path, small_spd)
        code = cli.main([
            "mvn", "--covariance", str(path), "--method", "dense", "--samples", "400",
            "--tile-size", "4", "--upper", "2.0",
        ])
        assert code == 0
        assert "dimension        : 8" in capsys.readouterr().out

    def test_crd_with_save_and_map(self, tmp_path, capsys):
        out_path = tmp_path / "result.npz"
        code = cli.main([
            "crd", "--grid", "10", "--samples", "400", "--method", "tlr",
            "--save", str(out_path), "--map", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert "confidence region size" in out
        loaded = load_confidence_region(out_path)
        assert loaded.n == 100

    def test_calibrate(self, capsys):
        code = cli.main(["calibrate", "--tile-size", "48", "--rank", "4"])
        assert code == 0
        assert "CalibrationResult" in capsys.readouterr().out
