"""Unit tests for the Tile Low-Rank substrate."""

import numpy as np
import pytest

from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.runtime import Runtime
from repro.tile import TileMatrix
from repro.tlr import (
    LowRankTile,
    TLRMatrix,
    compress_tile,
    compress_tile_rsvd,
    lowrank_add,
    lowrank_matmul_dense,
    rank_distribution,
    rank_histogram,
    recompress,
    tlr_cholesky,
    tlr_cholesky_flops,
)


def _smooth_tile(rng, m=30, n=24, rank=5):
    """A tile with rapidly decaying spectrum (what covariance tiles look like)."""
    u = rng.standard_normal((m, rank))
    v = rng.standard_normal((n, rank))
    scales = np.logspace(0, -6, rank)
    return (u * scales) @ v.T


class TestLowRankTile:
    def test_to_dense_roundtrip(self, rng):
        u, v = rng.standard_normal((6, 2)), rng.standard_normal((5, 2))
        tile = LowRankTile(u, v)
        np.testing.assert_allclose(tile.to_dense(), u @ v.T)
        assert tile.shape == (6, 5)
        assert tile.rank == 2

    def test_rank_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            LowRankTile(rng.standard_normal((4, 2)), rng.standard_normal((4, 3)))

    def test_zero_rank_tile(self):
        tile = LowRankTile(np.zeros((3, 0)), np.zeros((4, 0)))
        assert tile.rank == 0
        assert tile.to_dense().shape == (3, 4)

    def test_transpose(self, rng):
        tile = LowRankTile(rng.standard_normal((5, 2)), rng.standard_normal((3, 2)))
        np.testing.assert_allclose(tile.transpose().to_dense(), tile.to_dense().T)

    def test_memory_smaller_than_dense_for_low_rank(self, rng):
        tile = compress_tile(_smooth_tile(rng, 60, 60, 4), accuracy=1e-6)
        assert tile.memory_bytes() < 60 * 60 * 8


class TestCompression:
    def test_accuracy_controls_error(self, rng):
        dense = _smooth_tile(rng)
        for eps in (1e-1, 1e-3, 1e-6):
            tile = compress_tile(dense, accuracy=eps)
            err = np.linalg.norm(tile.to_dense() - dense, 2) / np.linalg.norm(dense, 2)
            assert err <= eps * 5.0

    def test_tighter_accuracy_larger_rank(self, rng):
        dense = _smooth_tile(rng, rank=8)
        loose = compress_tile(dense, accuracy=1e-1)
        tight = compress_tile(dense, accuracy=1e-7)
        assert tight.rank >= loose.rank

    def test_max_rank_cap(self, rng):
        dense = rng.standard_normal((20, 20))  # full rank
        tile = compress_tile(dense, accuracy=1e-12, max_rank=5)
        assert tile.rank == 5

    def test_zero_tile(self):
        tile = compress_tile(np.zeros((6, 4)))
        assert tile.rank == 0

    def test_invalid_accuracy(self, rng):
        with pytest.raises(ValueError):
            compress_tile(rng.standard_normal((4, 4)), accuracy=2.0)

    def test_rsvd_close_to_svd(self, rng):
        dense = _smooth_tile(rng, 80, 70, 6)
        svd_tile = compress_tile(dense, accuracy=1e-5)
        rsvd_tile = compress_tile_rsvd(dense, accuracy=1e-5, max_rank=20, rng=0)
        err = np.linalg.norm(rsvd_tile.to_dense() - dense) / np.linalg.norm(dense)
        assert err < 1e-4
        assert abs(rsvd_tile.rank - svd_tile.rank) <= 3

    def test_recompress_reduces_inflated_rank(self, rng):
        dense = _smooth_tile(rng, rank=3)
        tile = compress_tile(dense, accuracy=1e-8)
        inflated = LowRankTile(np.hstack([tile.u, tile.u]), np.hstack([tile.v, np.zeros_like(tile.v)]))
        rounded = recompress(inflated, accuracy=1e-6)
        assert rounded.rank <= tile.rank + 1
        np.testing.assert_allclose(rounded.to_dense(), inflated.to_dense(), atol=1e-6)

    def test_lowrank_add_matches_dense(self, rng):
        a_dense, b_dense = _smooth_tile(rng), _smooth_tile(rng)
        a = compress_tile(a_dense, accuracy=1e-10)
        b = compress_tile(b_dense, accuracy=1e-10)
        out = lowrank_add(a, b, alpha=-2.0, accuracy=1e-10)
        np.testing.assert_allclose(out.to_dense(), a.to_dense() - 2.0 * b.to_dense(), atol=1e-7)

    def test_lowrank_add_shape_check(self, rng):
        a = compress_tile(rng.standard_normal((4, 4)))
        b = compress_tile(rng.standard_normal((5, 4)))
        with pytest.raises(ValueError):
            lowrank_add(a, b)

    def test_lowrank_matmul_dense(self, rng):
        tile = compress_tile(_smooth_tile(rng), accuracy=1e-10)
        x = rng.standard_normal((tile.shape[1], 7))
        np.testing.assert_allclose(lowrank_matmul_dense(tile, x), tile.to_dense() @ x, atol=1e-8)

    def test_lowrank_matmul_shape_check(self, rng):
        tile = compress_tile(rng.standard_normal((4, 6)))
        with pytest.raises(ValueError):
            lowrank_matmul_dense(tile, np.zeros((5, 2)))


@pytest.fixture
def cov_matrix():
    geom = Geometry.regular_grid(8, 8)
    return build_covariance(ExponentialKernel(1.0, 0.3), geom.locations, nugget=1e-6), geom


class TestTLRMatrix:
    def test_from_dense_reconstruction_error(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, tile_size=16, accuracy=1e-4)
        assert tlr.compression_error(sigma) < 1e-3

    def test_tighter_accuracy_smaller_error(self, cov_matrix):
        sigma, _ = cov_matrix
        loose = TLRMatrix.from_dense(sigma, 16, accuracy=1e-1).compression_error(sigma)
        tight = TLRMatrix.from_dense(sigma, 16, accuracy=1e-6).compression_error(sigma)
        assert tight < loose

    def test_from_kernel_matches_from_dense(self, cov_matrix):
        sigma, geom = cov_matrix
        a = TLRMatrix.from_dense(sigma, 16, accuracy=1e-6)
        b = TLRMatrix.from_kernel(ExponentialKernel(1.0, 0.3), geom.locations, 16, accuracy=1e-6, nugget=1e-6)
        np.testing.assert_allclose(a.to_dense(), b.to_dense(), atol=1e-5)

    def test_from_tile_matrix(self, cov_matrix):
        sigma, _ = cov_matrix
        tiles = TileMatrix.from_dense(sigma, 16, lower_only=True)
        tlr = TLRMatrix.from_tile_matrix(tiles, accuracy=1e-5)
        assert tlr.compression_error(sigma) < 1e-4

    def test_rank_matrix_symmetric_with_dense_diag(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-3)
        ranks = tlr.rank_matrix()
        assert np.all(ranks == ranks.T)
        assert np.all(np.diag(ranks) == 16)

    def test_compression_ratio_above_one(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-2)
        assert tlr.compression_ratio() > 1.0

    def test_max_rank_enforced(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-12, max_rank=3)
        assert tlr.max_offdiag_rank() <= 3

    def test_copy_independent(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-3)
        dup = tlr.copy()
        dup.diagonal[0][:] = 0.0
        assert tlr.diagonal[0].sum() != 0.0

    def test_rejects_nonsquare(self, rng):
        with pytest.raises(ValueError):
            TLRMatrix.from_dense(rng.standard_normal((4, 6)), 2)


class TestTLRCholesky:
    def test_factor_reconstructs_matrix(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-8)
        factor = tlr_cholesky(tlr)
        l_dense = factor.to_lower_dense()
        np.testing.assert_allclose(l_dense @ l_dense.T, sigma, atol=1e-5)

    def test_matches_dense_cholesky_at_tight_accuracy(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-10)
        factor = tlr_cholesky(tlr)
        np.testing.assert_allclose(factor.to_lower_dense(), np.linalg.cholesky(sigma), atol=1e-5)

    def test_loose_accuracy_still_approximates(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-2)
        factor = tlr_cholesky(tlr)
        l_dense = factor.to_lower_dense()
        rel = np.linalg.norm(l_dense @ l_dense.T - sigma) / np.linalg.norm(sigma)
        assert rel < 5e-2

    def test_parallel_matches_serial(self, cov_matrix):
        sigma, _ = cov_matrix
        serial = tlr_cholesky(TLRMatrix.from_dense(sigma, 16, accuracy=1e-8))
        threaded = tlr_cholesky(TLRMatrix.from_dense(sigma, 16, accuracy=1e-8), Runtime(n_workers=4))
        np.testing.assert_allclose(serial.to_lower_dense(), threaded.to_lower_dense(), atol=1e-8)

    def test_overwrite_semantics(self, cov_matrix):
        sigma, _ = cov_matrix
        tlr = TLRMatrix.from_dense(sigma, 16, accuracy=1e-6)
        out = tlr_cholesky(tlr, overwrite=True)
        assert out is tlr

    def test_flop_model_much_smaller_than_dense(self):
        dense_flops = 19600**3 / 3
        tlr_flops = tlr_cholesky_flops(19600, 980, 10)
        assert tlr_flops < dense_flops / 10


class TestRankAnalysis:
    def test_rank_histogram_bins(self):
        ranks = np.array([[16, 3, 7], [3, 16, 12], [7, 12, 16]])
        hist = rank_histogram(ranks, tile_size=16)
        assert sum(hist.values()) == 3  # strictly lower triangle count
        assert hist["[1,5]"] == 1
        assert hist["[6,10]"] == 1
        assert hist["[11,16]"] == 1

    def test_stronger_correlation_smaller_ranks(self):
        """The paper's Figure 5 finding: ranks decay with stronger correlation.

        The effect needs the grid to resolve the correlation ranges, so this
        uses a 20x20 grid (400 locations) with tile size 50.
        """
        geom = Geometry.regular_grid(20, 20)
        weak = rank_distribution(ExponentialKernel(1.0, 0.033), geom.locations, 50, accuracy=1e-3)
        strong = rank_distribution(ExponentialKernel(1.0, 0.234), geom.locations, 50, accuracy=1e-3)
        assert strong.mean_rank <= weak.mean_rank
        assert strong.median_rank <= weak.median_rank

    def test_report_fields(self):
        geom = Geometry.regular_grid(10, 10)
        report = rank_distribution(ExponentialKernel(1.0, 0.1), geom.locations, 25, accuracy=1e-3)
        assert report.rank_matrix.shape == (4, 4)
        assert report.max_rank <= 25
        assert report.median_rank >= 1
        assert sum(report.histogram.values()) == 6
