"""Tests for the synthetic correlation suites and the simulated wind dataset."""

import numpy as np
import pytest

from repro.datasets import (
    CORRELATION_LEVELS,
    WIND_MATERN_THETA,
    make_correlation_suite,
    make_synthetic_dataset,
    make_wind_dataset,
)
from repro.datasets.wind import SAUDI_BBOX, WIND_THRESHOLD_MS


class TestSyntheticDataset:
    def test_correlation_levels_match_paper(self):
        assert CORRELATION_LEVELS == {"weak": 0.033, "medium": 0.1, "strong": 0.234}

    def test_dataset_shapes(self):
        ds = make_synthetic_dataset("weak", grid_size=10, rng=0)
        assert ds.n == 100
        assert ds.latent_field.shape == (100,)
        assert ds.posterior.mean.shape == (100,)
        assert ds.posterior.covariance.shape == (100, 100)
        assert ds.prior_covariance.shape == (100, 100)

    def test_observed_fraction(self):
        ds = make_synthetic_dataset("medium", grid_size=12, observed_fraction=0.25, rng=0)
        assert ds.observed_indices.shape[0] == round(0.25 * 144)
        assert np.unique(ds.observed_indices).size == ds.observed_indices.size

    def test_posterior_reduces_uncertainty_at_observed_locations(self):
        ds = make_synthetic_dataset("medium", grid_size=10, rng=1)
        prior_var = np.diag(ds.prior_covariance)
        post_var = np.diag(ds.posterior.covariance)
        assert np.all(post_var <= prior_var + 1e-10)
        assert post_var[ds.observed_indices].mean() < prior_var[ds.observed_indices].mean()

    def test_posterior_mean_correlates_with_latent(self):
        ds = make_synthetic_dataset("strong", grid_size=12, rng=2)
        corr = np.corrcoef(ds.posterior.mean, ds.latent_field)[0, 1]
        assert corr > 0.5

    def test_explicit_range_value(self):
        ds = make_synthetic_dataset(0.07, grid_size=8, rng=0)
        assert ds.kernel.range_ == pytest.approx(0.07)
        assert ds.name == "range=0.07"

    def test_default_threshold_quantile(self):
        ds = make_synthetic_dataset("weak", grid_size=8, rng=0)
        u = ds.default_threshold(0.8)
        assert np.mean(ds.latent_field > u) == pytest.approx(0.2, abs=0.05)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_dataset("extreme", grid_size=8)

    def test_invalid_fraction_and_noise(self):
        with pytest.raises(ValueError):
            make_synthetic_dataset("weak", grid_size=8, observed_fraction=0.0)
        with pytest.raises(ValueError):
            make_synthetic_dataset("weak", grid_size=8, noise_std=0.0)

    def test_reproducible_with_seed(self):
        a = make_synthetic_dataset("medium", grid_size=8, rng=123)
        b = make_synthetic_dataset("medium", grid_size=8, rng=123)
        np.testing.assert_allclose(a.latent_field, b.latent_field)
        np.testing.assert_allclose(a.posterior.mean, b.posterior.mean)

    def test_suite_contains_all_levels(self):
        suite = make_correlation_suite(grid_size=8, rng=0)
        assert set(suite) == {"weak", "medium", "strong"}
        ranges = [suite[k].kernel.range_ for k in ("weak", "medium", "strong")]
        assert ranges == sorted(ranges)


class TestWindDataset:
    def test_paper_constants(self):
        assert WIND_MATERN_THETA == (1.0, 0.005069, 1.43391)
        assert WIND_THRESHOLD_MS == 4.0
        lon_min, lon_max, lat_min, lat_max = SAUDI_BBOX
        assert lon_min < lon_max and lat_min < lat_max

    def test_dataset_shapes_and_ranges(self):
        ds = make_wind_dataset(grid_nx=20, grid_ny=15, rng=0)
        assert ds.n == 300
        assert ds.wind_speed.shape == (300,)
        assert ds.lon_lat.shape == (300, 2)
        assert ds.wind_speed.min() > 0.0
        assert ds.wind_speed.max() < 20.0

    def test_standardization(self):
        ds = make_wind_dataset(grid_nx=20, grid_ny=15, rng=1)
        assert ds.standardized.mean() == pytest.approx(0.0, abs=1e-10)
        assert ds.standardized.std(ddof=1) == pytest.approx(1.0, abs=1e-10)
        # threshold mapping is consistent
        back = ds.standardized_threshold * ds.climatology_std + ds.climatology_mean
        assert back == pytest.approx(ds.threshold_ms)

    def test_lon_lat_inside_bbox(self):
        ds = make_wind_dataset(grid_nx=10, grid_ny=8, rng=0)
        lon_min, lon_max, lat_min, lat_max = SAUDI_BBOX
        assert ds.lon_lat[:, 0].min() >= lon_min and ds.lon_lat[:, 0].max() <= lon_max
        assert ds.lon_lat[:, 1].min() >= lat_min and ds.lon_lat[:, 1].max() <= lat_max

    def test_spatial_structure_present(self):
        """Neighbouring locations must be more similar than distant ones."""
        ds = make_wind_dataset(grid_nx=20, grid_ny=15, rng=2)
        img = ds.geometry.as_image(ds.wind_speed)
        horizontal_diff = np.abs(np.diff(img, axis=1)).mean()
        shuffled = np.random.default_rng(0).permutation(ds.wind_speed)
        shuffled_diff = np.abs(np.diff(ds.geometry.as_image(shuffled), axis=1)).mean()
        assert horizontal_diff < shuffled_diff

    def test_windy_regions_match_design(self):
        """The simulated mean surface has elevated winds in the north and the
        south-west, as in the paper's Figure 2a."""
        ds = make_wind_dataset(grid_nx=30, grid_ny=24, rng=3)
        img = ds.geometry.as_image(ds.wind_speed)
        north = img[-5:, :].mean()       # top rows = high latitude
        interior = img[8:14, 12:20].mean()
        assert north > interior

    def test_kernel_family(self):
        ds = make_wind_dataset(grid_nx=10, grid_ny=8, rng=0)
        assert ds.kernel.smoothness == pytest.approx(1.43391)

    def test_reproducibility(self):
        a = make_wind_dataset(grid_nx=12, grid_ny=10, rng=7)
        b = make_wind_dataset(grid_nx=12, grid_ny=10, rng=7)
        np.testing.assert_allclose(a.wind_speed, b.wind_speed)
