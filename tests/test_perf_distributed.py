"""Tests for the performance models and the simulated distributed cluster."""

import pytest

from repro.distributed import (
    ClusterSimulator,
    ClusterSpec,
    DistributedPMVNModel,
    SimTask,
    build_cholesky_task_graph,
    build_pmvn_task_graph,
    process_grid,
    simulate_pmvn,
)
from repro.distributed.pmvn_model import KernelRates
from repro.perf import (
    MACHINES,
    PMVNCostModel,
    calibrate,
    dense_cholesky_flops,
    get_machine,
    predict_shared_memory_time,
    sweep_flops,
    tlr_cholesky_model_flops,
)


class TestMachines:
    def test_paper_testbeds_present(self):
        for key in ("intel-icelake-56", "intel-cascadelake-40", "amd-milan-64", "amd-naples-128", "shaheen-xc40-node"):
            assert key in MACHINES

    def test_peak_gflops_positive_and_ordered(self):
        icelake = get_machine("intel-icelake-56")
        naples = get_machine("amd-naples-128")
        assert icelake.peak_gflops > 0
        assert icelake.peak_gflops > naples.peak_gflops / 2  # same order of magnitude

    def test_sustained_efficiency_bounds(self):
        m = get_machine("amd-milan-64")
        assert m.sustained_gflops(0.5) == pytest.approx(0.5 * m.peak_gflops)
        with pytest.raises(ValueError):
            m.sustained_gflops(0.0)

    def test_unknown_machine(self):
        with pytest.raises(ValueError):
            get_machine("cray-1")


class TestCalibration:
    def test_calibration_rates_positive(self):
        cal = calibrate(tile_size=64, rank=4, n_chains=64)
        assert cal.gemm_gflops > 0.1
        assert cal.potrf_gflops > 0.01
        assert cal.qmc_rows_per_second > 1e3
        assert cal.lowrank_gemm_gflops > 0.01

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            calibrate(tile_size=0)


class TestCostModels:
    def test_flop_formulas(self):
        assert dense_cholesky_flops(1000) == pytest.approx(1000**3 / 3)
        assert tlr_cholesky_model_flops(10_000, 500, 10) < dense_cholesky_flops(10_000)
        assert sweep_flops(1000, 100, 100) > 0
        assert sweep_flops(1000, 100, 100, mean_rank=5) < sweep_flops(1000, 100, 100)

    def test_shared_memory_tlr_speedup_grows_with_samples(self):
        """Table II shape: TLR advantage grows with the QMC sample size."""
        model = PMVNCostModel(get_machine("intel-icelake-56"))
        s_small = model.speedup_tlr_over_dense(40_000, 100, tile_size=500, mean_rank=10)
        s_large = model.speedup_tlr_over_dense(40_000, 10_000, tile_size=500, mean_rank=10)
        assert s_large >= s_small
        assert s_small > 1.0

    def test_predict_time_increases_with_dimension(self):
        m = get_machine("amd-milan-64")
        t1 = predict_shared_memory_time(m, 4_900, 10_000)
        t2 = predict_shared_memory_time(m, 78_400, 10_000)
        assert t2 > t1

    def test_dense_slower_than_tlr(self):
        m = get_machine("intel-cascadelake-40")
        dense = predict_shared_memory_time(m, 40_000, 10_000, "dense")
        tlr = predict_shared_memory_time(m, 40_000, 10_000, "tlr")
        assert dense > tlr


class TestClusterSpec:
    def test_process_grid_near_square(self):
        assert process_grid(16) == (4, 4)
        assert process_grid(32) == (4, 8)
        assert process_grid(512) == (16, 32)
        assert process_grid(7) == (1, 7)

    def test_owner_within_range(self):
        cluster = ClusterSpec(8)
        owners = {cluster.owner(i, j) for i in range(10) for j in range(10)}
        assert owners.issubset(set(range(8)))

    def test_transfer_time_monotone_in_size(self):
        cluster = ClusterSpec(4)
        assert cluster.transfer_seconds(1e9) > cluster.transfer_seconds(1e3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(4, network_bandwidth_gbs=0.0)


class TestClusterSimulator:
    def test_single_task(self):
        cluster = ClusterSpec(2)
        result = ClusterSimulator(cluster, cores_per_node=1).run([SimTask("a", 1.0, 0)])
        assert result.makespan == pytest.approx(1.0)
        assert result.n_tasks == 1

    def test_chain_serializes(self):
        cluster = ClusterSpec(1)
        tasks = [SimTask("t0", 1.0, 0)]
        for i in range(1, 4):
            tasks.append(SimTask(f"t{i}", 1.0, 0, deps=[i - 1]))
        result = ClusterSimulator(cluster, cores_per_node=4).run(tasks)
        assert result.makespan == pytest.approx(4.0)

    def test_independent_tasks_parallelize(self):
        cluster = ClusterSpec(1)
        tasks = [SimTask(f"t{i}", 1.0, 0) for i in range(4)]
        result = ClusterSimulator(cluster, cores_per_node=4).run(tasks)
        assert result.makespan == pytest.approx(1.0)
        assert result.parallel_efficiency == pytest.approx(1.0)

    def test_remote_dependency_pays_communication(self):
        cluster = ClusterSpec(2, network_bandwidth_gbs=1.0, network_latency_us=1000.0)
        tasks = [
            SimTask("producer", 1.0, 0, output_bytes=1e9),
            SimTask("consumer", 1.0, 1, deps=[0]),
        ]
        result = ClusterSimulator(cluster, cores_per_node=1).run(tasks)
        assert result.makespan > 2.5  # 1 + transfer(>1s) + 1
        assert result.communication_seconds > 0.5

    def test_local_dependency_pays_nothing(self):
        cluster = ClusterSpec(2, network_bandwidth_gbs=1.0)
        tasks = [
            SimTask("producer", 1.0, 0, output_bytes=1e9),
            SimTask("consumer", 1.0, 0, deps=[0]),
        ]
        result = ClusterSimulator(cluster, cores_per_node=1).run(tasks)
        assert result.makespan == pytest.approx(2.0)
        assert result.communication_seconds == 0.0

    def test_cycle_detected(self):
        cluster = ClusterSpec(1)
        tasks = [SimTask("a", 1.0, 0, deps=[1]), SimTask("b", 1.0, 0, deps=[0])]
        with pytest.raises(ValueError, match="cycle"):
            ClusterSimulator(cluster).run(tasks)

    def test_invalid_node_assignment(self):
        cluster = ClusterSpec(2)
        with pytest.raises(ValueError):
            ClusterSimulator(cluster).run([SimTask("a", 1.0, 7)])

    def test_empty_graph(self):
        result = ClusterSimulator(ClusterSpec(2)).run([])
        assert result.makespan == 0.0


class TestPMVNTaskGraphs:
    def test_cholesky_task_count(self):
        cluster = ClusterSpec(4)
        rates = KernelRates()
        tasks = build_cholesky_task_graph(100, 25, cluster, rates)
        nt = 4
        expected = nt + nt * (nt - 1) // 2 + nt * (nt - 1) // 2 + nt * (nt - 1) * (nt - 2) // 6
        assert len(tasks) == expected

    def test_tlr_cholesky_cheaper_tasks(self):
        cluster = ClusterSpec(4)
        rates = KernelRates()
        dense = build_cholesky_task_graph(200, 25, cluster, rates, method="dense")
        tlr = build_cholesky_task_graph(200, 25, cluster, rates, method="tlr", mean_rank=3)
        assert sum(t.cost for t in tlr) < sum(t.cost for t in dense)

    def test_pmvn_graph_contains_sweep_tasks(self):
        cluster = ClusterSpec(2)
        rates = KernelRates()
        tasks = build_pmvn_task_graph(100, 80, 25, cluster, rates, chain_block=40)
        tags = {t.tag for t in tasks}
        assert {"potrf", "qmc", "sweep_gemm"}.issubset(tags)

    def test_simulated_scaling_improves_with_nodes(self):
        """Strong scaling holds once there are enough tiles to distribute."""
        rates = KernelRates(core_gflops=10.0, qmc_rows_per_second=5e6)
        small = simulate_pmvn(20_000, 2_000, 1_000, ClusterSpec(1), rates)
        large = simulate_pmvn(20_000, 2_000, 1_000, ClusterSpec(8), rates)
        assert large.makespan <= small.makespan * 1.05

    def test_simulated_tlr_not_slower(self):
        rates = KernelRates(core_gflops=10.0, qmc_rows_per_second=5e6)
        dense = simulate_pmvn(2000, 500, 250, ClusterSpec(4), rates, method="dense")
        tlr = simulate_pmvn(2000, 500, 250, ClusterSpec(4), rates, method="tlr", mean_rank=8)
        assert tlr.makespan <= dense.makespan * 1.05


class TestDistributedModel:
    @pytest.fixture
    def rates(self):
        return KernelRates.from_machine(get_machine("shaheen-xc40-node"))

    def test_table3_band(self, rates):
        """Table III: end-to-end TLR speedup must sit in a modest band (1.2-2.5x),
        far below the Cholesky-only speedup."""
        for nodes, n in [(16, 108_900), (128, 360_000), (512, 760_384)]:
            model = DistributedPMVNModel(ClusterSpec(nodes), rates)
            e2e = model.speedup_tlr_over_dense(n, 10_000)
            chol_only = model.cholesky_speedup_tlr_over_dense(n)
            assert 1.1 < e2e < 3.0
            assert chol_only > e2e

    def test_fig7_time_grows_with_n(self, rates):
        model = DistributedPMVNModel(ClusterSpec(64), rates)
        times = [model.total_time(n, 10_000, "dense") for n in (108_900, 266_256, 360_000)]
        assert times == sorted(times)

    def test_fig7_time_shrinks_with_nodes(self, rates):
        times = [
            DistributedPMVNModel(ClusterSpec(nodes), rates).total_time(266_256, 10_000, "dense")
            for nodes in (16, 64, 256)
        ]
        assert times[0] > times[1] > times[2]

    def test_breakdown_sums_to_total(self, rates):
        model = DistributedPMVNModel(ClusterSpec(32), rates)
        bd = model.breakdown(200_000, 10_000, "dense")
        assert bd["total"] == pytest.approx(bd["cholesky"] + bd["sweep"])

    def test_sweep_is_format_independent_by_default(self, rates):
        model = DistributedPMVNModel(ClusterSpec(64), rates)
        assert model.sweep_time(200_000, 10_000, "dense") == pytest.approx(
            model.sweep_time(200_000, 10_000, "tlr")
        )

    def test_lowrank_sweep_option_reduces_sweep_time(self, rates):
        model = DistributedPMVNModel(ClusterSpec(64), rates, sweep_uses_lowrank=True)
        assert model.sweep_time(200_000, 10_000, "tlr") < model.sweep_time(200_000, 10_000, "dense")
