"""Unit tests for repro.kernels: geometry, covariance kernels, matrix assembly."""

import numpy as np
import pytest

from repro.kernels import (
    ExponentialKernel,
    GaussianKernel,
    Geometry,
    MaternKernel,
    PoweredExponentialKernel,
    add_nugget,
    build_covariance,
    build_covariance_tile,
    build_tiled_covariance,
    cross_distances,
    grid_locations,
    irregular_locations,
    kernel_from_name,
    pairwise_distances,
)


class TestDistances:
    def test_pairwise_symmetric_zero_diagonal(self, rng):
        locs = rng.random((15, 2))
        d = pairwise_distances(locs)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_pairwise_matches_bruteforce(self, rng):
        locs = rng.random((10, 3))
        d = pairwise_distances(locs)
        brute = np.linalg.norm(locs[:, None, :] - locs[None, :, :], axis=2)
        np.testing.assert_allclose(d, brute, atol=1e-10)

    def test_cross_distances_shape(self, rng):
        a, b = rng.random((4, 2)), rng.random((7, 2))
        assert cross_distances(a, b).shape == (4, 7)

    def test_cross_distances_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="spatial dimension"):
            cross_distances(rng.random((3, 2)), rng.random((3, 3)))


class TestLocations:
    def test_grid_count_and_bounds(self):
        locs = grid_locations(4, 3, extent=(0, 2, 0, 1))
        assert locs.shape == (12, 2)
        assert locs[:, 0].max() == pytest.approx(2.0)
        assert locs[:, 1].max() == pytest.approx(1.0)

    def test_grid_invalid_extent(self):
        with pytest.raises(ValueError):
            grid_locations(3, 3, extent=(1, 0, 0, 1))

    def test_irregular_count_and_range(self):
        locs = irregular_locations(50, rng=0)
        assert locs.shape == (50, 2)
        assert locs.min() >= 0.0 and locs.max() <= 1.0

    def test_irregular_no_duplicates_with_jitter(self):
        locs = irregular_locations(200, rng=1, jitter_grid=True)
        assert np.unique(locs, axis=0).shape[0] == 200

    def test_irregular_uniform_mode(self):
        locs = irregular_locations(30, rng=2, jitter_grid=False)
        assert locs.shape == (30, 2)


class TestGeometry:
    def test_regular_grid_image_roundtrip(self):
        geom = Geometry.regular_grid(4, 3)
        values = np.arange(geom.n, dtype=float)
        img = geom.as_image(values)
        assert img.shape == (3, 4)
        assert img[0, 0] == 0.0

    def test_grid_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="incompatible"):
            Geometry(np.zeros((5, 2)), grid_shape=(2, 2))

    def test_subset_and_reorder(self):
        geom = Geometry.regular_grid(3, 3)
        sub = geom.subset([0, 2, 4])
        assert sub.n == 3
        perm = np.arange(geom.n)[::-1]
        re = geom.reorder(perm)
        np.testing.assert_allclose(re.locations[0], geom.locations[-1])

    def test_reorder_rejects_non_permutation(self):
        geom = Geometry.regular_grid(2, 2)
        with pytest.raises(ValueError):
            geom.reorder([0, 0, 1, 2])

    def test_as_image_requires_grid(self):
        geom = Geometry.irregular(10, rng=0)
        with pytest.raises(ValueError):
            geom.as_image(np.zeros(10))

    def test_distances_shape(self, grid_geometry):
        assert grid_geometry.distances().shape == (30, 30)


class TestKernels:
    @pytest.mark.parametrize(
        "kernel",
        [
            MaternKernel(1.5, 0.2, 1.0),
            ExponentialKernel(2.0, 0.3),
            GaussianKernel(1.0, 0.1),
            PoweredExponentialKernel(1.0, 0.2, 1.5),
        ],
    )
    def test_variance_at_zero(self, kernel):
        assert kernel(np.array([0.0]))[0] == pytest.approx(kernel.variance)

    @pytest.mark.parametrize(
        "kernel",
        [
            MaternKernel(1.0, 0.2, 0.8),
            ExponentialKernel(1.0, 0.3),
            GaussianKernel(1.0, 0.1),
        ],
    )
    def test_monotone_decreasing(self, kernel):
        h = np.linspace(0, 2, 50)
        vals = kernel(h)
        assert np.all(np.diff(vals) <= 1e-12)

    def test_matern_half_equals_exponential(self):
        """Matérn with smoothness 1/2 reduces to the exponential kernel."""
        h = np.linspace(0, 1, 20)
        matern = MaternKernel(1.3, 0.25, 0.5)(h)
        expo = ExponentialKernel(1.3, 0.25)(h)
        np.testing.assert_allclose(matern, expo, rtol=1e-10)

    def test_matern_large_distance_underflow_is_zero(self):
        val = MaternKernel(1.0, 0.001, 2.5)(np.array([1e4]))
        assert val[0] == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ExponentialKernel()(np.array([-0.1]))

    @pytest.mark.parametrize(
        "cls, kwargs",
        [
            (MaternKernel, {"sigma2": -1.0}),
            (ExponentialKernel, {"range_": 0.0}),
            (GaussianKernel, {"sigma2": 0.0}),
            (PoweredExponentialKernel, {"power": 2.5}),
        ],
    )
    def test_invalid_parameters(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(**kwargs)

    def test_effective_range_orders_with_range_parameter(self):
        short = ExponentialKernel(1.0, 0.05).effective_range()
        long = ExponentialKernel(1.0, 0.3).effective_range()
        assert long > short

    def test_kernel_from_name(self):
        k = kernel_from_name("matern", sigma2=1.0, range_=0.1, smoothness=1.0)
        assert isinstance(k, MaternKernel)
        with pytest.raises(ValueError):
            kernel_from_name("nope")

    def test_correlation_normalized(self):
        k = ExponentialKernel(4.0, 0.2)
        assert k.correlation(np.array([0.0]))[0] == pytest.approx(1.0)


class TestCovarianceBuild:
    def test_dense_matrix_is_spd(self, grid_geometry, exp_kernel):
        sigma = build_covariance(exp_kernel, grid_geometry.locations, nugget=1e-10)
        assert np.allclose(sigma, sigma.T)
        eigvals = np.linalg.eigvalsh(sigma)
        assert eigvals.min() > 0

    def test_diagonal_is_variance_plus_nugget(self, grid_geometry):
        kern = ExponentialKernel(2.0, 0.2)
        sigma = build_covariance(kern, grid_geometry.locations, nugget=0.1)
        np.testing.assert_allclose(np.diag(sigma), 2.1)

    def test_negative_nugget_rejected(self, grid_geometry, exp_kernel):
        with pytest.raises(ValueError):
            build_covariance(exp_kernel, grid_geometry.locations, nugget=-1.0)

    def test_tile_matches_dense_block(self, grid_geometry, exp_kernel):
        sigma = build_covariance(exp_kernel, grid_geometry.locations)
        tile = build_covariance_tile(exp_kernel, grid_geometry.locations, (5, 12), (0, 7))
        np.testing.assert_allclose(tile, sigma[5:12, 0:7], atol=1e-12)

    def test_tile_nugget_only_on_global_diagonal(self, grid_geometry, exp_kernel):
        tile = build_covariance_tile(exp_kernel, grid_geometry.locations, (3, 6), (3, 6), nugget=0.5)
        np.testing.assert_allclose(np.diag(tile), exp_kernel.variance + 0.5)
        off = build_covariance_tile(exp_kernel, grid_geometry.locations, (6, 9), (0, 3), nugget=0.5)
        sigma = build_covariance(exp_kernel, grid_geometry.locations)
        np.testing.assert_allclose(off, sigma[6:9, 0:3], atol=1e-12)

    def test_tile_range_validation(self, grid_geometry, exp_kernel):
        with pytest.raises(ValueError):
            build_covariance_tile(exp_kernel, grid_geometry.locations, (0, 100), (0, 5))

    def test_tiled_generator_covers_lower_triangle(self, grid_geometry, exp_kernel):
        sigma = build_covariance(exp_kernel, grid_geometry.locations)
        reconstructed = np.zeros_like(sigma)
        for i, j, tile in build_tiled_covariance(exp_kernel, grid_geometry.locations, 8):
            r0, r1 = 8 * i, min(8 * (i + 1), sigma.shape[0])
            c0, c1 = 8 * j, min(8 * (j + 1), sigma.shape[0])
            reconstructed[r0:r1, c0:c1] = tile
        lower = np.tril(sigma)
        np.testing.assert_allclose(np.tril(reconstructed), lower, atol=1e-12)

    def test_add_nugget_returns_copy(self, small_spd):
        out = add_nugget(small_spd, 0.5)
        assert out is not small_spd
        np.testing.assert_allclose(np.diag(out), np.diag(small_spd) + 0.5)
        with pytest.raises(ValueError):
            add_nugget(small_spd, -0.1)
