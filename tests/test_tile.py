"""Unit tests for the dense tile linear algebra substrate."""

import numpy as np
import pytest

from repro.runtime import Runtime, TaskError
from repro.tile import (
    TileMatrix,
    cholesky_flops,
    gemm_kernel,
    gemm_update_kernel,
    potrf_kernel,
    syrk_kernel,
    tile_ranges,
    tiled_cholesky,
    tiled_gemm,
    tiled_lower_solve,
    tiled_matvec,
    trsm_kernel,
)


class TestTileRanges:
    def test_even_split(self):
        assert tile_ranges(10, 5) == [(0, 5), (5, 10)]

    def test_ragged_edge(self):
        assert tile_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_tile(self):
        assert tile_ranges(3, 10) == [(0, 3)]


class TestTileMatrix:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((13, 9))
        tiles = TileMatrix.from_dense(dense, 4)
        np.testing.assert_allclose(tiles.to_dense(), dense)
        assert tiles.mt == 4 and tiles.nt == 3

    def test_lower_only_roundtrip_symmetrized(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3, lower_only=True)
        np.testing.assert_allclose(tiles.to_dense(symmetrize=True), small_spd)

    def test_lower_only_upper_access_rejected(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3, lower_only=True)
        with pytest.raises(KeyError):
            tiles.tile(0, 1)

    def test_index_out_of_range(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3)
        with pytest.raises(IndexError):
            tiles.tile(10, 0)

    def test_set_tile_shape_check(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3)
        with pytest.raises(ValueError):
            tiles.set_tile(0, 0, np.zeros((2, 2)))

    def test_zeros_and_shapes(self):
        tiles = TileMatrix.zeros(7, 5, 3)
        assert tiles.tile_shape(2, 1) == (1, 2)
        assert tiles.to_dense().sum() == 0.0

    def test_from_generator_matches_from_dense(self, medium_spd):
        nb = 12

        def gen(i, j, rr, cr):
            return medium_spd[rr[0]:rr[1], cr[0]:cr[1]]

        a = TileMatrix.from_generator(medium_spd.shape[0], medium_spd.shape[1], nb, gen)
        np.testing.assert_allclose(a.to_dense(), medium_spd)

    def test_from_generator_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            TileMatrix.from_generator(6, 6, 3, lambda i, j, rr, cr: np.zeros((1, 1)))

    def test_copy_is_deep(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 4)
        dup = tiles.copy()
        dup.tile(0, 0)[:] = 0.0
        assert tiles.tile(0, 0).sum() != 0.0

    def test_block_cyclic_owner_map(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 2)
        owners = tiles.owner_map(2, 2)
        assert owners.min() >= 0 and owners.max() <= 3
        assert owners[0, 0] == 0
        assert owners[1, 1] == 3

    def test_memory_bytes(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 4)
        assert tiles.memory_bytes() == small_spd.nbytes


class TestDenseKernels:
    def test_potrf_reconstructs(self, small_spd):
        factor = potrf_kernel(small_spd)
        np.testing.assert_allclose(factor @ factor.T, small_spd, atol=1e-10)
        assert np.allclose(factor, np.tril(factor))

    def test_potrf_rejects_indefinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            potrf_kernel(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_trsm_solves_panel(self, rng, small_spd):
        factor = potrf_kernel(small_spd)
        panel = rng.standard_normal((5, 8))
        out = trsm_kernel(panel, factor)
        np.testing.assert_allclose(out @ factor.T, panel, atol=1e-10)

    def test_trsm_shape_checks(self, rng):
        with pytest.raises(ValueError):
            trsm_kernel(rng.standard_normal((3, 4)), rng.standard_normal((3, 3)))

    def test_syrk_in_place(self, rng):
        c = np.eye(4) * 10
        a = rng.standard_normal((4, 3))
        expected = c - a @ a.T
        syrk_kernel(c, a)
        np.testing.assert_allclose(c, expected)

    def test_gemm_kernel_transpose_modes(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((3, 4))
        c = np.zeros((3, 3))
        gemm_kernel(c, a, b, alpha=-1.0, beta=1.0, transpose_b=True)
        np.testing.assert_allclose(c, -a @ b.T)
        c2 = np.zeros((3, 5))
        b2 = rng.standard_normal((4, 5))
        gemm_kernel(c2, a, b2, alpha=2.0, beta=0.0, transpose_b=False)
        np.testing.assert_allclose(c2, 2 * a @ b2)

    def test_gemm_update_kernel(self, rng):
        l_tile = rng.standard_normal((4, 3))
        y_tile = rng.standard_normal((3, 6))
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((4, 6))
        a0, b0 = a.copy(), b.copy()
        gemm_update_kernel(a, b, l_tile, y_tile)
        np.testing.assert_allclose(a, a0 - l_tile @ y_tile)
        np.testing.assert_allclose(b, b0 - l_tile @ y_tile)


class TestTiledCholesky:
    @pytest.mark.parametrize("tile_size", [3, 5, 8, 40])
    def test_matches_numpy(self, medium_spd, tile_size):
        tiles = TileMatrix.from_dense(medium_spd, tile_size, lower_only=True)
        factor = tiled_cholesky(tiles)
        np.testing.assert_allclose(factor.to_dense(), np.linalg.cholesky(medium_spd), atol=1e-9)

    def test_full_layout_input_accepted(self, medium_spd):
        tiles = TileMatrix.from_dense(medium_spd, 7)
        factor = tiled_cholesky(tiles)
        np.testing.assert_allclose(factor.to_dense(), np.linalg.cholesky(medium_spd), atol=1e-9)

    def test_overwrite_false_preserves_input(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3, lower_only=True)
        before = tiles.to_dense(symmetrize=True)
        tiled_cholesky(tiles, overwrite=False)
        np.testing.assert_allclose(tiles.to_dense(symmetrize=True), before)

    def test_overwrite_true_modifies_input(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3, lower_only=True)
        factor = tiled_cholesky(tiles, overwrite=True)
        assert factor is tiles

    def test_parallel_runtime_gives_same_factor(self, medium_spd):
        serial = tiled_cholesky(TileMatrix.from_dense(medium_spd, 8, lower_only=True))
        threaded = tiled_cholesky(
            TileMatrix.from_dense(medium_spd, 8, lower_only=True), Runtime(n_workers=4)
        )
        np.testing.assert_allclose(serial.to_dense(), threaded.to_dense(), atol=1e-12)

    def test_non_spd_raises_task_error(self):
        bad = np.eye(6)
        bad[3, 3] = -2.0
        tiles = TileMatrix.from_dense(bad, 3, lower_only=True)
        with pytest.raises(TaskError):
            tiled_cholesky(tiles)

    def test_rectangular_rejected(self):
        tiles = TileMatrix.zeros(6, 4, 2)
        with pytest.raises(ValueError):
            tiled_cholesky(tiles)

    def test_flop_count(self):
        assert cholesky_flops(100) == pytest.approx(100**3 / 3)


class TestTiledOperations:
    def test_tiled_gemm_matches_numpy(self, rng):
        a = rng.standard_normal((12, 9))
        b = rng.standard_normal((9, 7))
        at = TileMatrix.from_dense(a, 4)
        bt = TileMatrix.from_dense(b, 4)
        c = tiled_gemm(at, bt)
        np.testing.assert_allclose(c.to_dense(), a @ b, atol=1e-10)

    def test_tiled_gemm_symmetric_lower_input(self, medium_spd, rng):
        x = rng.standard_normal((medium_spd.shape[0], 5))
        at = TileMatrix.from_dense(medium_spd, 10, lower_only=True)
        bt = TileMatrix.from_dense(x, 10)
        c = tiled_gemm(at, bt)
        np.testing.assert_allclose(c.to_dense(), medium_spd @ x, atol=1e-9)

    def test_tiled_gemm_dimension_check(self, rng):
        at = TileMatrix.from_dense(rng.standard_normal((4, 4)), 2)
        bt = TileMatrix.from_dense(rng.standard_normal((5, 3)), 2)
        with pytest.raises(ValueError):
            tiled_gemm(at, bt)

    def test_tiled_lower_solve_vector(self, medium_spd, rng):
        factor = tiled_cholesky(TileMatrix.from_dense(medium_spd, 9, lower_only=True))
        rhs = rng.standard_normal(medium_spd.shape[0])
        x = tiled_lower_solve(factor, rhs)
        np.testing.assert_allclose(np.linalg.cholesky(medium_spd) @ x, rhs, atol=1e-9)

    def test_tiled_lower_solve_matrix_rhs(self, medium_spd, rng):
        factor = tiled_cholesky(TileMatrix.from_dense(medium_spd, 9, lower_only=True))
        rhs = rng.standard_normal((medium_spd.shape[0], 3))
        x = tiled_lower_solve(factor, rhs)
        assert x.shape == rhs.shape
        np.testing.assert_allclose(np.linalg.cholesky(medium_spd) @ x, rhs, atol=1e-9)

    def test_tiled_matvec_full_and_symmetric(self, medium_spd, rng):
        x = rng.standard_normal(medium_spd.shape[0])
        full = TileMatrix.from_dense(medium_spd, 11)
        np.testing.assert_allclose(tiled_matvec(full, x), medium_spd @ x, atol=1e-10)
        lower = TileMatrix.from_dense(medium_spd, 11, lower_only=True)
        np.testing.assert_allclose(tiled_matvec(lower, x), medium_spd @ x, atol=1e-10)

    def test_tiled_matvec_length_check(self, small_spd):
        tiles = TileMatrix.from_dense(small_spd, 3)
        with pytest.raises(ValueError):
            tiled_matvec(tiles, np.zeros(5))
