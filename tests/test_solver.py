"""Tests for the session-oriented solver API (repro.solver).

Three concerns:

* **parity** — `MVNSolver`/`Model` results are bit-identical to the
  functional API for every ``method=`` string (the functional API is a
  wrapper over a transient solver, and these tests pin that contract),
* **cache behavior** — one model factorizes once across ``probability`` →
  ``probability_batch`` → ``confidence_region``,
* **lifecycle** — closed solvers/runtimes reject reuse with a clear error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FactorCache,
    MVNSolver,
    Runtime,
    SolverConfig,
    confidence_region,
    factorize,
    mvn_probability,
    mvn_probability_batch,
)
from repro.core.methods import ACCEPTED_METHODS, PARALLEL_METHODS
from repro.kernels import ExponentialKernel, Geometry, build_covariance


@pytest.fixture
def solver_sigma() -> np.ndarray:
    geom = Geometry.regular_grid(5, 5)
    return build_covariance(ExponentialKernel(1.0, 0.2), geom.locations, nugget=1e-6)


@pytest.fixture
def correlation_sigma() -> np.ndarray:
    """An exact correlation matrix (unit diagonal, perfectly symmetric)."""
    geom = Geometry.regular_grid(4, 4)
    sigma = build_covariance(ExponentialKernel(1.0, 0.2), geom.locations, nugget=0.0)
    sigma = 0.5 * (sigma + sigma.T)
    np.fill_diagonal(sigma, 1.0)
    return sigma


def _box(n: int) -> tuple[np.ndarray, np.ndarray]:
    return np.full(n, -np.inf), np.linspace(0.4, 1.2, n)


class TestParity:
    @pytest.mark.parametrize("method", ACCEPTED_METHODS)
    def test_probability_matches_functional(self, solver_sigma, method):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        functional = mvn_probability(
            a, b, solver_sigma, method=method, n_samples=300, rng=17, tile_size=9
        )
        with MVNSolver(SolverConfig(method=method, n_samples=300, tile_size=9)) as solver:
            session = solver.model(solver_sigma).probability(a, b, rng=17)
        assert session.probability == functional.probability
        assert session.error == functional.error
        assert session.method == functional.method

    @pytest.mark.parametrize("method", ["dense", "tlr", "sov", "mc"])
    def test_probability_batch_matches_functional(self, solver_sigma, method):
        n = solver_sigma.shape[0]
        rng = np.random.default_rng(3)
        boxes = [(np.full(n, -np.inf), rng.uniform(0.3, 2.0, n)) for _ in range(4)]
        functional = mvn_probability_batch(
            boxes, solver_sigma, method=method, n_samples=200, rng=5
        )
        with MVNSolver(SolverConfig(method=method, n_samples=200)) as solver:
            session = solver.model(solver_sigma).probability_batch(boxes, rng=5)
        for f_res, s_res in zip(functional, session):
            assert s_res.probability == f_res.probability
            assert s_res.error == f_res.error
            assert s_res.details["batch_index"] == f_res.details["batch_index"]
            assert s_res.details["batch_size"] == len(boxes)

    @pytest.mark.parametrize("method", PARALLEL_METHODS)
    def test_confidence_region_matches_functional(self, solver_sigma, method):
        n = solver_sigma.shape[0]
        mean = np.linspace(-0.5, 1.0, n)
        functional = confidence_region(
            solver_sigma, mean, 0.4, method=method, n_samples=200, rng=7
        )
        with MVNSolver(SolverConfig(method=method, n_samples=200)) as solver:
            session = solver.model(solver_sigma, mean=mean).confidence_region(0.4, rng=7)
        np.testing.assert_array_equal(
            session.confidence_function, functional.confidence_function
        )
        np.testing.assert_array_equal(session.order, functional.order)

    def test_vector_mean_binding(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        mu = np.linspace(-0.3, 0.6, n)
        functional = mvn_probability(
            a, b, solver_sigma, method="dense", n_samples=200, rng=2, mean=mu
        )
        with MVNSolver(SolverConfig(method="dense", n_samples=200)) as solver:
            model = solver.model(solver_sigma, mean=mu)
            assert model.probability(a, b, rng=2).probability == functional.probability
            # the bound mean is applied to every box of a batch too — even
            # when n_boxes == n, which a flat means= vector could not express
            batch = model.probability_batch([(a, b)] * n, rng=2)
            assert batch[0].probability == functional.probability

    def test_per_call_overrides(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        with MVNSolver(SolverConfig(method="dense", n_samples=100)) as solver:
            model = solver.model(solver_sigma)
            big = model.probability(a, b, n_samples=400, rng=0)
            assert big.n_samples == 400
            functional = mvn_probability(
                a, b, solver_sigma, method="dense", n_samples=400, rng=0
            )
            assert big.probability == functional.probability

    def test_pre_bound_factor(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        factor = factorize(solver_sigma, method="dense", tile_size=9)
        with MVNSolver(SolverConfig(method="dense", n_samples=200, tile_size=9)) as solver:
            model = solver.model(solver_sigma, factor=factor)
            assert model.factor is factor
            result = model.probability(a, b, rng=1)
        functional = mvn_probability(
            a, b, solver_sigma, method="dense", n_samples=200, rng=1, factor=factor, tile_size=9
        )
        assert result.probability == functional.probability
        assert solver.cache is not None and solver.cache.factorize_count == 0


class TestCacheBehavior:
    def test_one_factorization_across_query_kinds(self, correlation_sigma):
        """probability -> batch -> confidence_region share a single factor.

        With an exact correlation matrix, zero mean and ``nugget=0`` the
        standardized matrix the CRD driver factorizes is bytewise the model
        covariance, so even the detection is a cache hit.
        """
        n = correlation_sigma.shape[0]
        a, b = _box(n)
        with MVNSolver(SolverConfig(method="dense", n_samples=150)) as solver:
            model = solver.model(correlation_sigma)
            model.probability(a, b, rng=0)
            model.probability_batch([(a, b), (a, b + 0.5)], rng=0)
            model.confidence_region(0.3, rng=0, nugget=0.0)
            assert solver.cache.factorize_count == 1

    def test_factor_shared_across_models_of_same_sigma(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        with MVNSolver(SolverConfig(method="dense", n_samples=100)) as solver:
            solver.model(solver_sigma).probability(a, b, rng=0)
            solver.model(solver_sigma.copy()).probability(a, b, rng=0)
            assert solver.cache.factorize_count == 1
            assert solver.cache.hits == 1

    def test_shared_cache_across_solvers(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        cache = FactorCache()
        with MVNSolver(SolverConfig(method="dense", n_samples=100), cache=cache) as solver:
            solver.model(solver_sigma).probability(a, b, rng=0)
        with MVNSolver(SolverConfig(method="dense", n_samples=100), cache=cache) as solver:
            solver.model(solver_sigma).probability(a, b, rng=0)
        assert cache.factorize_count == 1
        # a borrowed cache survives solver.close()
        assert len(cache) == 1

    def test_cache_none_disables_sharing_but_not_model_reuse(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        with MVNSolver(SolverConfig(method="dense", n_samples=100), cache=None) as solver:
            assert solver.cache is None
            model = solver.model(solver_sigma)
            model.probability(a, b, rng=0)
            first = model.factor
            model.probability(a, b, rng=0)
            assert model.factor is first  # bound factor still reused

    def test_eager_factorize(self, solver_sigma):
        with MVNSolver(SolverConfig(method="tlr", n_samples=100)) as solver:
            model = solver.model(solver_sigma)
            assert model.factor is None
            factor = model.factorize()
            assert model.factor is factor
            assert solver.cache.factorize_count == 1
        with MVNSolver(SolverConfig(method="sov")) as solver:
            with pytest.raises(ValueError, match="does not use a Cholesky factor"):
                solver.model(solver_sigma).factorize()


class TestLifecycle:
    def test_closed_solver_rejects_everything(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        solver = MVNSolver(SolverConfig(method="dense", n_samples=100))
        model = solver.model(solver_sigma)
        solver.close()
        solver.close()  # idempotent
        assert solver.closed
        with pytest.raises(RuntimeError, match="closed"):
            solver.model(solver_sigma)
        with pytest.raises(RuntimeError, match="closed"):
            model.probability(a, b, rng=0)
        with pytest.raises(RuntimeError, match="closed"):
            model.probability_batch([(a, b)], rng=0)
        with pytest.raises(RuntimeError, match="closed"):
            model.confidence_region(0.3, rng=0)
        with pytest.raises(RuntimeError, match="closed"):
            with solver:
                pass

    def test_context_manager_closes(self, solver_sigma):
        with MVNSolver(SolverConfig(method="dense")) as solver:
            assert not solver.closed
        assert solver.closed
        assert solver.runtime.closed  # owned runtime closed with the solver

    def test_borrowed_runtime_survives_solver_close(self, solver_sigma):
        n = solver_sigma.shape[0]
        a, b = _box(n)
        runtime = Runtime(n_workers=1)
        with MVNSolver(SolverConfig(method="dense", n_samples=100), runtime=runtime) as solver:
            solver.model(solver_sigma).probability(a, b, rng=0)
        assert not runtime.closed
        runtime.insert_task(lambda: None)  # still usable
        runtime.wait_all()
        runtime.close()

    def test_closed_runtime_rejects_submission(self):
        rt = Runtime()
        rt.close()
        assert rt.closed
        with pytest.raises(RuntimeError, match="closed"):
            rt.insert_task(lambda: None)
        with pytest.raises(RuntimeError, match="closed"):
            rt.wait_all()
        with pytest.raises(RuntimeError, match="closed"):
            rt.register(np.zeros(1))

    def test_runtime_context_manager_closes(self):
        ran = []
        with Runtime() as rt:
            rt.insert_task(lambda: ran.append(1))
        assert ran == [1]
        assert rt.closed

    def test_runtime_ensure(self):
        fresh = Runtime.ensure(None)
        assert fresh.n_workers == 1 and not fresh.closed
        rt = Runtime(n_workers=2)
        assert Runtime.ensure(rt) is rt
        rt.close()
        with pytest.raises(RuntimeError, match="closed"):
            Runtime.ensure(rt)

    def test_solver_rejects_closed_borrowed_runtime(self):
        rt = Runtime()
        rt.close()
        with pytest.raises(RuntimeError, match="closed"):
            MVNSolver(SolverConfig(), runtime=rt)


class TestConfig:
    def test_method_canonicalized(self):
        assert SolverConfig(method="PMVN").method == "dense"
        assert SolverConfig(method="genz").method == "sov"
        assert SolverConfig(method="tlr").is_parallel
        assert not SolverConfig(method="mc").is_parallel

    def test_unknown_method_message_matches_registry(self):
        from repro.core.methods import unknown_method_message

        with pytest.raises(ValueError) as excinfo:
            SolverConfig(method="bogus")
        assert str(excinfo.value) == unknown_method_message("bogus")

    def test_validation(self):
        with pytest.raises(ValueError, match="n_samples"):
            SolverConfig(n_samples=0)
        with pytest.raises(ValueError, match="tile_size"):
            SolverConfig(tile_size=0)
        with pytest.raises(ValueError, match="accuracy"):
            SolverConfig(accuracy=0.0)
        with pytest.raises(ValueError, match="max_rank"):
            SolverConfig(max_rank=0)
        with pytest.raises(ValueError, match="chain_block"):
            SolverConfig(chain_block=0)

    def test_replace_revalidates(self):
        config = SolverConfig(method="dense")
        tlr = config.replace(method="tlr", accuracy=1e-5)
        assert tlr.method == "tlr" and tlr.accuracy == 1e-5
        assert config.method == "dense"  # frozen original untouched
        with pytest.raises(ValueError):
            config.replace(n_samples=-1)

    def test_solver_accepts_method_string(self, solver_sigma):
        with MVNSolver("tlr") as solver:
            assert solver.config.method == "tlr"
        with pytest.raises(TypeError, match="SolverConfig"):
            MVNSolver(42)

    def test_model_rejects_factor_for_baselines(self, solver_sigma):
        factor = factorize(solver_sigma, method="dense")
        with MVNSolver("sov") as solver:
            with pytest.raises(ValueError, match="does not use a Cholesky factor"):
                solver.model(solver_sigma, factor=factor)

    def test_confidence_region_rejects_baselines(self, solver_sigma):
        with MVNSolver("mc") as solver:
            with pytest.raises(ValueError, match="factor-based"):
                solver.model(solver_sigma).confidence_region(0.3)
