#!/usr/bin/env python3
"""Quickstart: high-dimensional MVN probabilities with the repro library.

Builds a spatial covariance matrix, computes the MVN probability of a box
with every available estimator (naive MC, sequential Genz SOV, the parallel
tile-based PMVN in dense and TLR mode), and shows that they agree — with the
TLR variant running on a compressed factor.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import MVNSolver, SolverConfig
from repro.kernels import ExponentialKernel, Geometry, build_covariance


def main() -> None:
    # 1. A spatial problem: 900 locations on a 30 x 30 grid with an
    #    exponential covariance (medium correlation, as in the paper).
    geometry = Geometry.regular_grid(30, 30)
    kernel = ExponentialKernel(sigma2=1.0, range_=0.1)
    sigma = build_covariance(kernel, geometry.locations, nugget=1e-6)
    n = geometry.n
    print(f"problem: n = {n} locations, exponential kernel range = {kernel.range_}")

    # 2. Integration limits: the probability that the field stays below 3
    #    standard deviations everywhere (an orthant-type probability with a
    #    non-trivial value at this dimension).
    a = np.full(n, -np.inf)
    b = np.full(n, 3.0)

    # 3. Estimate with every method.  Each estimator gets its own solver
    #    session (the solver owns the worker pool and the factor cache; the
    #    model binds the covariance and factorizes lazily on first use).
    configs = [
        SolverConfig(method="mc", n_samples=20_000),
        SolverConfig(method="sov", n_samples=2_000),
        SolverConfig(method="dense", n_samples=2_000, tile_size=150),
        SolverConfig(method="tlr", n_samples=2_000, tile_size=150, accuracy=1e-3),
    ]
    print(f"\n{'method':10s} {'probability':>14s} {'std error':>12s} {'time':>9s}")
    for config in configs:
        with MVNSolver(config, n_workers=4, policy="prio") as solver:
            model = solver.model(sigma)
            start = time.perf_counter()
            result = model.probability(a, b, rng=42)
            elapsed = time.perf_counter() - start
        print(f"{config.method:10s} {result.probability:14.6f} {result.error:12.2e} {elapsed:8.2f}s")

    print(
        "\nAll estimators agree within their Monte Carlo error; the TLR method"
        "\nfactors a compressed covariance and is the one that scales to the"
        "\npaper's 100K+ dimensional problems."
    )


if __name__ == "__main__":
    main()
