#!/usr/bin/env python3
"""Confidence (excursion) region detection on a synthetic dataset.

Reproduces the Figure-1 workflow of the paper at laptop scale:

1. simulate a latent Gaussian field on a grid (exponential kernel),
2. observe a noisy subset of locations and form the posterior (eqs. 7-8),
3. run Algorithm 1 (confidence region detection) with the dense and the TLR
   backends,
4. validate the detected regions with Monte Carlo samples of the posterior,
5. render the marginal-probability map and the excursion map side by side.

Run:  python examples/synthetic_excursion.py [weak|medium|strong]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MVNSolver, Runtime, SolverConfig
from repro.datasets import make_synthetic_dataset
from repro.excursion import (
    compare_confidence_functions,
    excursion_map,
    marginal_probability_map,
    mc_validate_regions,
)
from repro.utils.reporting import ascii_heatmap


def main(level: str = "medium") -> None:
    print(f"=== synthetic excursion-set detection ({level} correlation) ===")
    dataset = make_synthetic_dataset(level, grid_size=24, rng=1)
    threshold = dataset.default_threshold(0.6)
    print(f"n = {dataset.n} locations, {dataset.observed_indices.size} noisy observations, "
          f"threshold u = {threshold:.3f}")

    # Two solver sessions (dense and TLR backends) sharing one borrowed
    # worker pool; each binds the posterior field once and detects from it.
    runtime = Runtime(n_workers=4)
    common = dict(n_samples=3_000, tile_size=96)
    with MVNSolver(SolverConfig(method="dense", **common), runtime=runtime) as solver:
        dense = solver.model(
            dataset.posterior.covariance, mean=dataset.posterior.mean
        ).confidence_region(threshold, rng=7)
    with MVNSolver(SolverConfig(method="tlr", accuracy=1e-3, **common), runtime=runtime) as solver:
        tlr = solver.model(
            dataset.posterior.covariance, mean=dataset.posterior.mean
        ).confidence_region(threshold, rng=7)

    alpha = 0.25
    marginal_img = marginal_probability_map(
        dataset.geometry, dataset.posterior.mean, np.diag(dataset.posterior.covariance), threshold
    )
    joint_img = excursion_map(dataset.geometry, dense, alpha)

    print("\nmarginal exceedance probability map:")
    print(ascii_heatmap(marginal_img))
    print(f"\nconfidence region at confidence {1 - alpha:.2f} (joint, dense backend):")
    print(ascii_heatmap(joint_img))

    marginal_size = int(np.count_nonzero(marginal_img >= 1 - alpha))
    print(f"\nmarginal region size (p >= {1 - alpha:.2f}): {marginal_size}")
    print(f"joint confidence region size:           {dense.region_size(alpha)}")
    print("-> the joint region is a (often much smaller) subset: controlling the"
          " family-wise exceedance probability is stricter than thresholding marginals.")

    cmp = compare_confidence_functions(dense, tlr)
    print(f"\ndense vs TLR (accuracy 1e-3): max |F+ difference| = "
          f"{cmp['max_pointwise_difference']:.2e}")

    validation = mc_validate_regions(
        dense, dataset.posterior.covariance, dataset.posterior.mean, n_samples=20_000, rng=3
    )
    print("\nMonte Carlo validation (1-alpha vs empirical joint exceedance):")
    print(validation)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "medium")
