#!/usr/bin/env python3
"""Live excursion-set monitoring over a stream of observations.

A sensor network watches a latent Gaussian field (exponential kernel on a
grid) for threshold exceedance.  Observations arrive one at a time; each
assimilation is the classic Gaussian conditioning step

    gain  k_i = Sigma[:, i] / (Sigma[i, i] + tau^2)
    mean  mu'    = mu + k_i (y_i - mu_i)
    cov   Sigma' = Sigma - u u^T,   u = Sigma[:, i] / sqrt(Sigma[i, i] + tau^2)

— a **rank-1 downdate** of the covariance.  Instead of refactorizing the
n x n posterior after every observation (O(n^3) per step), the monitor
submits each step to :mod:`repro.serve` as a
:class:`~repro.serve.SigmaUpdate` chained on the previous step: the broker
routes the query to the shard already holding the parent factor, ships only
the n-vector ``u``, and the shard applies the rank-1 Cholesky downdate in
O(n^2) (:meth:`repro.solver.Model.update`).  The full covariance is
factorized exactly once, at step 0.

Run:  python examples/streaming_excursion_monitor.py [steps]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.serve import QueryBroker, ServeConfig, SigmaUpdate


def main(n_steps: int = 12) -> None:
    side = 16
    tau = 0.3          # observation noise std
    threshold = 2.0    # excursion level the monitor alarms on
    rng = np.random.default_rng(11)

    geom = Geometry.regular_grid(side, side)
    sigma = build_covariance(ExponentialKernel(1.0, 0.25), geom.locations,
                             nugget=1e-6)
    n = sigma.shape[0]
    print(f"=== streaming excursion monitor: {n} locations, "
          f"{n_steps} assimilation steps, threshold u = {threshold} ===")

    # ground truth: one draw of the field, observed through noise at a
    # sliding window of sensor locations
    truth = np.linalg.cholesky(sigma) @ rng.standard_normal(n)
    sensors = rng.permutation(n)[:n_steps]

    # the monitor tracks the posterior moments itself (O(n^2) per step);
    # the *factorization* — the O(n^3) part — rides the serve lineage path
    mu = np.zeros(n)
    cov = sigma.copy()
    a = np.full(n, -np.inf)
    b = np.full(n, threshold)

    config = ServeConfig(n_shards=2, worker_mode="thread")
    with QueryBroker(config, "dense") as broker:
        # step 0: the prior — the only full covariance ever shipped
        result = broker.submit(a, b, sigma, mean=mu, n_samples=2000,
                               rng=0).result()
        print(f"step  0 (prior):      P(excursion) = {1.0 - result.probability:.4f}")

        chain = None
        for step, sensor in enumerate(sensors, start=1):
            y = truth[sensor] + tau * rng.standard_normal()
            scale = np.sqrt(cov[sensor, sensor] + tau**2)
            u = cov[:, sensor] / scale
            mu = mu + u * ((y - mu[sensor]) / scale)
            cov = cov - np.outer(u, u)

            chain = SigmaUpdate(chain if chain is not None else sigma,
                                u, downdate=True)
            result = broker.submit(a, b, chain, mean=mu, n_samples=2000,
                                   rng=0).result()
            serve = result.details["serve"]
            excursion = 1.0 - result.probability
            alarm = "  << ALARM" if excursion > 0.5 else ""
            print(f"step {step:2d} (sensor {sensor:3d}): "
                  f"P(excursion) = {excursion:.4f}  "
                  f"[shard {serve['shard']}, "
                  f"{'warm rank-1 downdate' if serve['lineage']['warm'] else 'cold refactorize'}]"
                  f"{alarm}")

        stats = broker.stats()

    print(f"\nfactorizations: {sum(s.factorize_count for s in stats.shards)} "
          f"(full covariances shipped: {stats.sigma_sends}, "
          f"{stats.sigma_bytes} bytes)")
    print(f"warm downdates: {sum(s.updates for s in stats.shards)} "
          f"(update vectors shipped: {stats.update_sends}, "
          f"{stats.update_bytes} bytes)")
    print(f"lineage routing: {stats.lineage_routes} warm, "
          f"{stats.lineage_fallbacks} fell back to refactorization")
    saved = stats.sigma_bytes * stats.update_sends - stats.update_bytes
    print(f"-> the lineage path moved {stats.update_bytes} bytes where "
          f"re-shipping Sigma every step would have moved "
          f"{stats.sigma_bytes * stats.update_sends} "
          f"({saved} bytes saved), and replaced {stats.update_sends} "
          f"O(n^3) refactorizations with O(n^2) downdates.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
