#!/usr/bin/env python3
"""Performance study: dense vs TLR, worker scaling, and the distributed model.

Mirrors the paper's quantitative evaluation at laptop scale:

1. measures one PMVN integration (dense vs TLR) across problem sizes and
   QMC sample sizes on this machine (Figure 4 / Table II shape),
2. sweeps the number of runtime worker threads to show task-parallel scaling,
3. evaluates the calibrated distributed model at the paper's node counts
   (Figure 7 / Table III shape).

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import MVNSolver, SolverConfig
from repro.distributed import ClusterSpec, DistributedPMVNModel
from repro.distributed.pmvn_model import KernelRates
from repro.kernels import ExponentialKernel, Geometry, build_covariance
from repro.perf import calibrate, get_machine
from repro.utils.reporting import Table


def measure(sigma, method, n_samples, n_workers):
    """Time one probability (factorization + sweep) through a fresh solver."""
    n = sigma.shape[0]
    a, b = np.full(n, -np.inf), np.full(n, 0.5)
    config = SolverConfig(method=method, n_samples=n_samples,
                          tile_size=max(100, n // 8), accuracy=1e-3)
    with MVNSolver(config, n_workers=n_workers) as solver:
        model = solver.model(sigma)
        start = time.perf_counter()
        model.probability(a, b, rng=0)
        return time.perf_counter() - start


def main() -> None:
    n_workers = min(8, os.cpu_count() or 1)
    print("local kernel calibration:", calibrate(tile_size=256, rank=16))

    # 1. dense vs TLR across sizes (Figure 4 shape)
    table = Table(["n", "QMC N", "dense (s)", "TLR (s)", "speedup"],
                  title=f"one MVN integration, {n_workers} workers")
    for side in (20, 32, 40):
        geom = Geometry.regular_grid(side, side)
        sigma = build_covariance(ExponentialKernel(1.0, 0.1), geom.locations, nugget=1e-6)
        for n_samples in (500, 2000):
            dense_t = measure(sigma, "dense", n_samples, n_workers)
            tlr_t = measure(sigma, "tlr", n_samples, n_workers)
            table.add_row([geom.n, n_samples, dense_t, tlr_t, dense_t / tlr_t])
    print()
    print(table.render())

    # 2. worker scaling of the dense PMVN
    geom = Geometry.regular_grid(36, 36)
    sigma = build_covariance(ExponentialKernel(1.0, 0.1), geom.locations, nugget=1e-6)
    table = Table(["workers", "elapsed (s)", "speedup vs 1 worker"], title="runtime worker scaling")
    base = None
    for workers in (1, 2, 4, n_workers):
        elapsed = measure(sigma, "dense", 2000, workers)
        base = base or elapsed
        table.add_row([workers, elapsed, base / elapsed])
    print(table.render())

    # 3. distributed model at the paper's scale (Figure 7 / Table III shape)
    rates = KernelRates.from_machine(get_machine("shaheen-xc40-node"))
    table = Table(["nodes", "n", "dense (s)", "TLR (s)", "speedup"],
                  title="distributed model (Cray XC40, QMC N = 10,000)")
    for nodes, n in [(16, 108_900), (64, 266_256), (128, 360_000), (512, 760_384)]:
        model = DistributedPMVNModel(ClusterSpec(nodes), rates)
        dense_t = model.total_time(n, 10_000, "dense")
        tlr_t = model.total_time(n, 10_000, "tlr")
        table.add_row([nodes, n, dense_t, tlr_t, dense_t / tlr_t])
    print(table.render())


if __name__ == "__main__":
    main()
