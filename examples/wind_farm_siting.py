#!/usr/bin/env python3
"""Wind-farm siting from wind-speed confidence regions (paper Section V-C2).

Reproduces the Figure-2 workflow on the simulated Saudi-Arabia wind dataset:

1. build the daily wind-speed field and standardize it by the climatology,
2. fit Matérn covariance parameters by maximum likelihood (the ExaGeoStat
   step of the paper's pipeline),
3. detect the regions whose wind speed exceeds 4 m/s with 95% confidence
   using the TLR backend,
4. contrast the result with the (over-optimistic) marginal probability map
   and report the candidate wind-farm locations.

Run:  python examples/wind_farm_siting.py
"""

from __future__ import annotations

import numpy as np

from repro import MVNSolver, Runtime, SolverConfig
from repro.datasets import make_wind_dataset
from repro.excursion import excursion_map, marginal_probability_map, region_overlap
from repro.kernels import build_covariance
from repro.stats import fit_kernel
from repro.utils.reporting import ascii_heatmap


def main() -> None:
    print("=== wind-farm siting over the Arabian peninsula (simulated data) ===")
    wind = make_wind_dataset(grid_nx=36, grid_ny=28, rng=15)
    print(f"n = {wind.n} grid locations, threshold = {wind.threshold_ms} m/s, "
          f"climatology mean = {wind.climatology_mean:.2f} m/s")

    print("\n(a) daily wind speed [m/s]:")
    print(ascii_heatmap(wind.geometry.as_image(wind.wind_speed)))

    # Matérn fit on a subsample (ExaGeoStat's role in the original pipeline)
    subsample = np.random.default_rng(0).choice(wind.n, size=300, replace=False)
    fit = fit_kernel(
        wind.geometry.locations[subsample],
        wind.standardized[subsample],
        family="matern",
        fixed_smoothness=1.43391,
        max_iterations=30,
    )
    print(f"\nfitted Matérn parameters (sigma2, range, smoothness) = "
          f"({fit.theta[0]:.3f}, {fit.theta[1]:.4f}, {fit.theta[2]:.3f})")

    sigma = build_covariance(fit.kernel, wind.geometry.locations, nugget=1e-6)
    marginal_img = marginal_probability_map(
        wind.geometry, wind.standardized, np.diag(sigma), wind.standardized_threshold
    )
    print("\n(b) marginal probability P(wind > 4 m/s):")
    print(ascii_heatmap(marginal_img))

    # Dense and TLR solver sessions over one borrowed worker pool; each
    # model binds the fitted field (covariance + standardized mean) once.
    runtime = Runtime(n_workers=4)
    with MVNSolver(SolverConfig(method="dense", n_samples=2_000, tile_size=144),
                   runtime=runtime) as solver:
        dense = solver.model(sigma, mean=wind.standardized).confidence_region(
            wind.standardized_threshold, rng=5
        )
    with MVNSolver(SolverConfig(method="tlr", accuracy=1e-4, max_rank=145,
                                n_samples=2_000, tile_size=144),
                   runtime=runtime) as solver:
        tlr = solver.model(sigma, mean=wind.standardized).confidence_region(
            wind.standardized_threshold, rng=5
        )

    alpha = 0.05
    dense_img = excursion_map(wind.geometry, dense, alpha)
    tlr_img = excursion_map(wind.geometry, tlr, alpha)
    print(f"\n(c) confidence regions at 95% (dense backend):")
    print(ascii_heatmap(dense_img))
    print(f"\n(d) confidence regions at 95% (TLR backend, accuracy 1e-4):")
    print(ascii_heatmap(tlr_img))

    overlap = region_overlap(dense_img, tlr_img)
    n_marginal = int(np.count_nonzero(marginal_img >= 0.95))
    print(f"\nmarginal 'region' size (p >= 0.95): {n_marginal} locations "
          f"(over-optimistic, as the paper stresses)")
    print(f"joint confidence region size: dense = {overlap['size_a']}, TLR = {overlap['size_b']}, "
          f"Jaccard overlap = {overlap['jaccard']:.3f}")

    candidates = np.flatnonzero(tlr.excursion_set(alpha))
    if candidates.size:
        lons = wind.lon_lat[candidates, 0]
        lats = wind.lon_lat[candidates, 1]
        print(f"\ncandidate wind-farm cells (95% confidence of > 4 m/s): {candidates.size}")
        print(f"  longitude span: {lons.min():.1f}E - {lons.max():.1f}E")
        print(f"  latitude span:  {lats.min():.1f}N - {lats.max():.1f}N")
    else:
        print("\nno cell exceeds 4 m/s with 95% confidence at this resolution; "
              "lower the confidence level or refine the grid.")


if __name__ == "__main__":
    main()
